"""Trace-driven core model.

Each core replays a memory-access trace through a bounded instruction window,
mirroring the processor model of Table 2 (4.2 GHz, 4-wide issue, 128-entry
instruction window):

* non-memory instructions retire at the peak issue rate;
* memory accesses first probe the shared LLC; hits complete after a fixed
  latency, misses become DRAM read requests;
* an access may only be *dispatched* once every instruction that is
  ``window_size`` instructions older has retired (in-order retirement), and
  at most ``max_outstanding`` DRAM reads may be in flight (MSHR limit);
* writes and writebacks are posted -- they generate DRAM traffic but do not
  stall the core.

The core is event-based: it exposes the earliest cycle at which it can make
progress, so the system simulator can skip idle cycles without losing
accuracy.  Traces wrap around until the core retires its instruction target,
which keeps memory contention alive for multi-programmed mixes whose
applications finish at different times (the standard weighted-speedup
methodology).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, TYPE_CHECKING

from repro.controller.request import MemoryRequest, RequestType
from repro.cpu.cache import Cache, CacheAccessResult
from repro.cpu.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import MemoryController

#: Sentinel "no event" hint.
FAR_FUTURE = 1 << 62


@dataclass
class _OutstandingAccess:
    """A dispatched memory access occupying the instruction window."""

    position: int
    completion_cycle: Optional[int]
    request: Optional[MemoryRequest] = None


class Core:
    """One trace-driven core of the simulated multi-core system."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        llc: Cache,
        clock_ratio: float = 2.625,
        issue_width: int = 4,
        window_size: int = 128,
        max_outstanding: int = 16,
        llc_hit_latency: int = 16,
        instruction_target: Optional[int] = None,
        bypass_llc: bool = False,
    ) -> None:
        """Create a core.

        Args:
            core_id: index of this core in the system.
            trace: the memory access trace the core replays.
            llc: the shared last-level cache.
            clock_ratio: core clock cycles per DRAM clock cycle (4.2 GHz over
                1.6 GHz = 2.625).
            issue_width: instructions issued per core cycle.
            window_size: instruction window (ROB) entries.
            max_outstanding: maximum in-flight DRAM reads (MSHR entries).
            llc_hit_latency: LLC hit latency in DRAM cycles.
            instruction_target: retire this many instructions before the core
                reports itself finished (defaults to one full pass of the
                trace).
            bypass_llc: if True, every access goes straight to DRAM (models an
                attacker that flushes its lines, as the §11 performance-attack
                study assumes).
        """
        if clock_ratio <= 0 or issue_width <= 0 or window_size <= 0:
            raise ValueError("core parameters must be positive")
        self.core_id = core_id
        self.trace = trace
        self.llc = llc
        self.clock_ratio = clock_ratio
        self.issue_width = issue_width
        self.window_size = window_size
        self.max_outstanding = max_outstanding
        self.llc_hit_latency = llc_hit_latency
        self.bypass_llc = bypass_llc
        self.instruction_target = (
            trace.total_instructions if instruction_target is None else instruction_target
        )
        #: Instructions retired per DRAM cycle when nothing stalls.
        self.instructions_per_dram_cycle = issue_width * clock_ratio

        # Trace cursor (wraps around).
        self._index = 0
        # Front-end progress, in DRAM cycles (fractional).
        self._front_cycle = 0.0
        # Cumulative instruction position of the *next* memory access.
        self._position = 0
        self._outstanding: Deque[_OutstandingAccess] = deque()
        self._reads_in_flight = 0
        # True when _position moved since the last retirement check.
        self._dispatched_since_retire = True
        # Posted writes (write-allocate fills, dirty-victim writebacks) that
        # bounced off a full write queue; retried in order before any new
        # dispatch so no DRAM write traffic is ever silently dropped.
        self._pending_posted_writes: Deque[int] = deque()
        # Cached next trace entry and the (fractional) cycle its preceding
        # instructions are fetched by: the failed-dispatch fast path is a
        # single comparison instead of a trace lookup plus a division.
        self._entry = trace[0]
        self._ready_cycle = (
            self._entry.gap_instructions / self.instructions_per_dram_cycle
        )

        # Progress accounting.
        self.retired_instructions = 0
        self.finish_cycle: Optional[int] = None
        self.mem_reads = 0
        self.mem_writes = 0
        self.llc_hits = 0
        self.llc_misses = 0

    # ------------------------------------------------------------------ #
    # Progress / completion
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """True once the core has retired its instruction target."""
        return self.finish_cycle is not None

    def ipc(self) -> float:
        """Instructions per *core* cycle up to the finish point."""
        if self.finish_cycle is None or self.finish_cycle == 0:
            return 0.0
        core_cycles = self.finish_cycle * self.clock_ratio
        return self.instruction_target / core_cycles

    def notify_completion(self, request: MemoryRequest, cycle: int) -> None:
        """A DRAM request issued by this core completed."""
        for access in self._outstanding:
            if access.request is request:
                access.completion_cycle = max(cycle, request.completion_cycle or cycle)
                if request.is_read:
                    self._reads_in_flight -= 1
                break

    # ------------------------------------------------------------------ #
    # Issuing
    # ------------------------------------------------------------------ #
    def try_issue(self, cycle: int, controller: "MemoryController") -> bool:
        """Attempt to dispatch the next trace access at ``cycle``.

        Returns True if an access was dispatched (the system should call
        again in the same cycle to exploit the full dispatch bandwidth).
        """
        self._retire(cycle)
        if self._pending_posted_writes:
            self._drain_posted_writes(controller, cycle)

        # Front-end: the access cannot dispatch before its preceding
        # instructions have been fetched / executed.
        ready_cycle = self._ready_cycle
        if ready_cycle > cycle:
            return False
        entry = self._entry
        dispatch_position = self._position + entry.gap_instructions

        # Instruction-window constraint: the instruction ``window_size``
        # older must have retired.
        if not self._window_allows(dispatch_position, cycle):
            return False

        # MSHR constraint.
        if self._reads_in_flight >= self.max_outstanding:
            return False

        line_address = (entry.address // self.llc.line_size) * self.llc.line_size
        # Probe before touching the LLC: a dispatch that fails on a full read
        # queue must be entirely side-effect-free, otherwise the failed
        # attempt allocates the line (turning the retry into a phantom LLC
        # hit that never reads DRAM) and drops the evicted victim's
        # writeback.  ``contains`` is a pure lookup; the mutating ``access``
        # only runs once the dispatch is committed.
        will_hit = (not self.bypass_llc) and self.llc.contains(line_address)

        access = _OutstandingAccess(position=dispatch_position, completion_cycle=None)
        if will_hit:
            result = self.llc.access(line_address, entry.is_write)
            self.llc_hits += 1
            access.completion_cycle = cycle + self.llc_hit_latency
        elif entry.is_write:
            result = (
                CacheAccessResult(hit=False)
                if self.bypass_llc
                else self.llc.access(line_address, entry.is_write)
            )
            self.llc_misses += 1
            # Write-allocate: fetch the line, but do not stall the core.
            self._post_write(controller, line_address, cycle)
            access.completion_cycle = cycle + self.llc_hit_latency
        else:
            request = MemoryRequest(
                address=line_address,
                request_type=RequestType.READ,
                core_id=self.core_id,
                arrival_cycle=cycle,
            )
            if not controller.enqueue(request):
                # Queue full: retry later (nothing was mutated above).
                return False
            result = (
                CacheAccessResult(hit=False)
                if self.bypass_llc
                else self.llc.access(line_address, entry.is_write)
            )
            self.llc_misses += 1
            access.request = request
            self._reads_in_flight += 1
            self.mem_reads += 1
        if result.writeback_address is not None:
            self._post_write(controller, result.writeback_address, cycle)

        if entry.is_write:
            self.mem_writes += 1

        self._outstanding.append(access)
        self._position = dispatch_position + 1
        self._dispatched_since_retire = True
        self._front_cycle = max(self._front_cycle, float(cycle))
        self._front_cycle = max(ready_cycle, self._front_cycle)
        self._advance_cursor()
        return True

    def _post_write(self, controller: "MemoryController", address: int, cycle: int) -> None:
        """Send a posted (non-blocking) write to the memory controller.

        Posted writes never stall the core, but they must not vanish either:
        if the write queue is full the address is buffered and retried (in
        order) at the next dispatch attempt.
        """
        if self._pending_posted_writes:
            # Keep the posted-write stream FIFO: never let a new write jump
            # ahead of one that is still waiting for queue space.
            self._pending_posted_writes.append(address)
            return
        request = MemoryRequest(
            address=address,
            request_type=RequestType.WRITE,
            core_id=self.core_id,
            arrival_cycle=cycle,
        )
        if not controller.enqueue(request):
            self._pending_posted_writes.append(address)

    def _drain_posted_writes(self, controller: "MemoryController", cycle: int) -> None:
        """Retry buffered posted writes while the queue accepts them."""
        pending = self._pending_posted_writes
        while pending:
            request = MemoryRequest(
                address=pending[0],
                request_type=RequestType.WRITE,
                core_id=self.core_id,
                arrival_cycle=cycle,
            )
            if not controller.enqueue(request):
                return
            pending.popleft()

    def _advance_cursor(self) -> None:
        self._index += 1
        if self._index >= len(self.trace):
            self._index = 0
        entry = self.trace[self._index]
        self._entry = entry
        self._ready_cycle = self._front_cycle + (
            entry.gap_instructions / self.instructions_per_dram_cycle
        )

    # ------------------------------------------------------------------ #
    # Retirement
    # ------------------------------------------------------------------ #
    def _window_allows(self, dispatch_position: int, cycle: int) -> bool:
        """True if the instruction window has room for ``dispatch_position``."""
        boundary = dispatch_position - self.window_size
        while self._outstanding and self._outstanding[0].position <= boundary:
            access = self._outstanding[0]
            if access.completion_cycle is None or access.completion_cycle > cycle:
                return False
            self._outstanding.popleft()
        return True

    def _retire(self, cycle: int) -> None:
        """Retire completed accesses and update the instruction count."""
        outstanding = self._outstanding
        progressed = self._dispatched_since_retire
        while outstanding:
            access = outstanding[0]
            completion = access.completion_cycle
            if completion is None or completion > cycle:
                break
            outstanding.popleft()
            progressed = True
        if progressed:
            self._dispatched_since_retire = False
            if self.finish_cycle is None:
                # Retired instructions are approximated by the front-end
                # position of the oldest un-retired access (in-order
                # retirement); it only moves when an access retires or a new
                # one dispatches, so the check is skipped otherwise.
                retired = self._position
                if outstanding and outstanding[0].position < retired:
                    retired = outstanding[0].position
                self.retired_instructions = retired
                if retired >= self.instruction_target:
                    self.finish_cycle = cycle

    # ------------------------------------------------------------------ #
    # Event hints
    # ------------------------------------------------------------------ #
    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which this core can make progress."""
        best = FAR_FUTURE
        front = self._ready_cycle
        if front > cycle:
            best = math.ceil(front)
        for access in self._outstanding:
            completion = access.completion_cycle
            if completion is not None and cycle < completion < best:
                best = completion
        return best
