"""Trace-driven core model.

Each core replays a memory-access trace through a bounded instruction window,
mirroring the processor model of Table 2 (4.2 GHz, 4-wide issue, 128-entry
instruction window):

* non-memory instructions retire at the peak issue rate;
* memory accesses first probe the shared LLC; hits complete after a fixed
  latency, misses become DRAM read requests;
* an access may only be *dispatched* once every instruction that is
  ``window_size`` instructions older has retired (in-order retirement), and
  at most ``max_outstanding`` DRAM reads may be in flight (MSHR limit);
* writes and writebacks are posted -- they generate DRAM traffic but do not
  stall the core.

The core is event-based: it exposes the earliest cycle at which it can make
progress, so the system simulator can skip idle cycles without losing
accuracy.  Traces wrap around until the core retires its instruction target,
which keeps memory contention alive for multi-programmed mixes whose
applications finish at different times (the standard weighted-speedup
methodology).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, TYPE_CHECKING

from repro.controller.request import MemoryRequest, RequestPool, RequestType
from repro.cpu.cache import Cache, CacheAccessResult
from repro.cpu.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import MemoryController

#: Sentinel "no event" hint.
FAR_FUTURE = 1 << 62


@dataclass(slots=True)
class _OutstandingAccess:
    """A dispatched memory access occupying the instruction window."""

    position: int
    completion_cycle: Optional[int]
    request: Optional[MemoryRequest] = None


class Core:
    """One trace-driven core of the simulated multi-core system."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        llc: Cache,
        clock_ratio: float = 2.625,
        issue_width: int = 4,
        window_size: int = 128,
        max_outstanding: int = 16,
        llc_hit_latency: int = 16,
        instruction_target: Optional[int] = None,
        bypass_llc: bool = False,
        request_pool: Optional[RequestPool] = None,
        trace_data: Optional[tuple] = None,
        pooled_hits: bool = False,
    ) -> None:
        """Create a core.

        Args:
            core_id: index of this core in the system.
            trace: the memory access trace the core replays.
            llc: the shared last-level cache.
            clock_ratio: core clock cycles per DRAM clock cycle (4.2 GHz over
                1.6 GHz = 2.625).
            issue_width: instructions issued per core cycle.
            window_size: instruction window (ROB) entries.
            max_outstanding: maximum in-flight DRAM reads (MSHR entries).
            llc_hit_latency: LLC hit latency in DRAM cycles.
            instruction_target: retire this many instructions before the core
                reports itself finished (defaults to one full pass of the
                trace).
            bypass_llc: if True, every access goes straight to DRAM (models an
                attacker that flushes its lines, as the §11 performance-attack
                study assumes).
            request_pool: shared :class:`~repro.controller.request.RequestPool`
                the core allocates its memory requests from (a private pool is
                created when omitted, so standalone cores keep working).
            trace_data: optional pre-decomposed trace arrays
                ``(gaps, lines, is_writes, gap_cycles)`` shared across the
                configs of a batch group (see
                :mod:`repro.experiments.batch`); the lists are read-only
                during a run, so sharing them is observably identical to
                decomposing the trace here.
            pooled_hits: use the LLC's allocation-free shared hit result for
                the dispatch probe (the batch fast path).
        """
        if clock_ratio <= 0 or issue_width <= 0 or window_size <= 0:
            raise ValueError("core parameters must be positive")
        self.core_id = core_id
        self.trace = trace
        self.llc = llc
        self.clock_ratio = clock_ratio
        self.issue_width = issue_width
        self.window_size = window_size
        self.max_outstanding = max_outstanding
        self.llc_hit_latency = llc_hit_latency
        self.bypass_llc = bypass_llc
        self.request_pool = request_pool if request_pool is not None else RequestPool()
        self.instruction_target = (
            trace.total_instructions if instruction_target is None else instruction_target
        )
        #: Instructions retired per DRAM cycle when nothing stalls.
        self.instructions_per_dram_cycle = issue_width * clock_ratio
        # The trace, decomposed once into parallel plain lists (gap, aligned
        # line address, is-write, front-end cycles per gap): the dispatch
        # loop then reads list slots instead of chasing entry-object
        # attributes, re-aligning the address and re-dividing the gap on
        # every attempt.  A batch group precomputes the decomposition once
        # and shares it across every config (``trace_data``).
        if trace_data is not None:
            self._gaps, self._lines, self._is_writes, self._gap_cycles = trace_data
        else:
            line_size = llc.line_size
            entries = list(trace.entries)
            self._gaps = [entry.gap_instructions for entry in entries]
            self._lines = [
                (entry.address // line_size) * line_size for entry in entries
            ]
            self._is_writes = [entry.is_write for entry in entries]
            ipc = self.instructions_per_dram_cycle
            self._gap_cycles = [gap / ipc for gap in self._gaps]
        self._trace_len = len(self._gaps)
        # Dispatch probe: the batch path returns a shared hit result
        # instead of allocating one per LLC hit.
        self._probe_hit = llc.access_if_hit_pooled if pooled_hits else llc.access_if_hit

        # Trace cursor (wraps around).
        self._index = 0
        # Front-end progress, in DRAM cycles (fractional).
        self._front_cycle = 0.0
        # Cumulative instruction position of the *next* memory access.
        self._position = 0
        self._outstanding: Deque[_OutstandingAccess] = deque()
        self._reads_in_flight = 0
        # True when _position moved since the last retirement check.
        self._dispatched_since_retire = True
        # Posted writes (write-allocate fills, dirty-victim writebacks) that
        # bounced off a full write queue; retried in order before any new
        # dispatch so no DRAM write traffic is ever silently dropped.
        self._pending_posted_writes: Deque[int] = deque()
        # Cached current-access fields and the (fractional) cycle its
        # preceding instructions are fetched by: the failed-dispatch fast
        # path is a single comparison instead of a list lookup plus a
        # division.
        self._cur_gap = self._gaps[0]
        self._cur_line = self._lines[0]
        self._cur_write = self._is_writes[0]
        self._ready_cycle = self._gap_cycles[0]

        # Issue-gating state maintained for the system simulator's main
        # loop: after a failed dispatch, ``try_issue`` records the earliest
        # cycle at which retrying can possibly succeed (``_wake_cycle``) and
        # whether a retry is also warranted as soon as any DRAM command
        # issues (``_retry_on_issue`` -- controller queue space only frees
        # when the controller issues).  The gate is exact, not heuristic:
        # a skipped call is one that would have been a no-op, so the gated
        # schedule is byte-identical to calling ``try_issue`` every cycle.
        self._wake_cycle = 0
        self._retry_on_issue = False
        # Retired window entries are recycled: the request path allocates no
        # bookkeeping objects in steady state.
        self._access_pool: list = []

        # Progress accounting.
        self.retired_instructions = 0
        self.finish_cycle: Optional[int] = None
        self.mem_reads = 0
        self.mem_writes = 0
        self.llc_hits = 0
        self.llc_misses = 0

    # ------------------------------------------------------------------ #
    # Progress / completion
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """True once the core has retired its instruction target."""
        return self.finish_cycle is not None

    def ipc(self) -> float:
        """Instructions per *core* cycle up to the finish point."""
        if self.finish_cycle is None or self.finish_cycle == 0:
            return 0.0
        core_cycles = self.finish_cycle * self.clock_ratio
        return self.instruction_target / core_cycles

    def notify_completion(self, request: MemoryRequest, cycle: int) -> None:
        """A DRAM request issued by this core completed."""
        self._wake_cycle = 0
        for access in self._outstanding:
            if access.request is request:
                access.completion_cycle = max(cycle, request.completion_cycle or cycle)
                if request.is_read:
                    self._reads_in_flight -= 1
                # Drop the reference: the caller may recycle the request
                # through the pool, and a recycled object must never match
                # a stale window entry here.
                access.request = None
                break

    # ------------------------------------------------------------------ #
    # Issuing
    # ------------------------------------------------------------------ #
    def try_issue(self, cycle: int, controller: "MemoryController") -> bool:
        """Attempt to dispatch the next trace access at ``cycle``.

        Returns True if an access was dispatched (the system should call
        again in the same cycle to exploit the full dispatch bandwidth).
        """
        # Retire only when it can do something: bookkeeping moved since the
        # last call, or the window head's completion matured.  The guard is
        # exact -- _retire is a no-op otherwise -- and skips the call on
        # most failed retries.
        outstanding = self._outstanding
        if self._dispatched_since_retire:
            self._retire(cycle)
        elif outstanding:
            completion = outstanding[0].completion_cycle
            if completion is not None and completion <= cycle:
                self._retire(cycle)
        if self._pending_posted_writes:
            self._drain_posted_writes(controller, cycle)

        # Front-end: the access cannot dispatch before its preceding
        # instructions have been fetched / executed.
        ready_cycle = self._ready_cycle
        if ready_cycle > cycle:
            return self._block(cycle)
        dispatch_position = self._position + self._cur_gap

        # Instruction-window constraint: the instruction ``window_size``
        # older must have retired.
        if not self._window_allows(dispatch_position, cycle):
            return self._block(cycle)

        # MSHR constraint.
        if self._reads_in_flight >= self.max_outstanding:
            return self._block(cycle)

        line_address = self._cur_line
        is_write = self._cur_write
        # Probe-before-access: a dispatch that fails on a full read queue
        # must be entirely side-effect-free, otherwise the failed attempt
        # allocates the line (turning the retry into a phantom LLC hit that
        # never reads DRAM) and drops the evicted victim's writeback.
        # ``access_if_hit`` fuses the pure probe with the hit access (one
        # set lookup); only a committed miss runs the mutating ``access``.
        hit_result = (
            None if self.bypass_llc
            else self._probe_hit(line_address, is_write)
        )

        access_pool = self._access_pool
        if access_pool:
            access = access_pool.pop()
            access.position = dispatch_position
            access.completion_cycle = None
            access.request = None
        else:
            access = _OutstandingAccess(position=dispatch_position, completion_cycle=None)
        if hit_result is not None:
            result = hit_result
            self.llc_hits += 1
            access.completion_cycle = cycle + self.llc_hit_latency
        elif is_write:
            result = (
                CacheAccessResult(hit=False)
                if self.bypass_llc
                else self.llc.access(line_address, is_write)
            )
            self.llc_misses += 1
            # Write-allocate: fetch the line, but do not stall the core.
            self._post_write(controller, line_address, cycle)
            access.completion_cycle = cycle + self.llc_hit_latency
        else:
            request = self.request_pool.acquire(
                line_address, RequestType.READ, self.core_id, cycle
            )
            if not controller.enqueue(request):
                # Queue full: retry later (nothing was mutated above).  Queue
                # space only frees when the controller issues a command, so
                # the retry is gated on issue events rather than on time.
                self.request_pool.release(request)
                self._wake_cycle = self.next_event_cycle(cycle)
                self._retry_on_issue = True
                return False
            result = (
                CacheAccessResult(hit=False)
                if self.bypass_llc
                else self.llc.access(line_address, is_write)
            )
            self.llc_misses += 1
            access.request = request
            self._reads_in_flight += 1
            self.mem_reads += 1
        if result.writeback_address is not None:
            self._post_write(controller, result.writeback_address, cycle)

        if is_write:
            self.mem_writes += 1

        self._outstanding.append(access)
        self._position = dispatch_position + 1
        self._dispatched_since_retire = True
        front = self._front_cycle
        if cycle > front:
            front = float(cycle)
        if ready_cycle > front:
            front = ready_cycle
        self._front_cycle = front
        # Advance the trace cursor (inlined: one call per dispatch on the
        # hottest path in the simulator).
        index = self._index + 1
        if index >= self._trace_len:
            index = 0
        self._index = index
        self._cur_gap = self._gaps[index]
        self._cur_line = self._lines[index]
        self._cur_write = self._is_writes[index]
        self._ready_cycle = front + self._gap_cycles[index]
        return True

    def _block(self, cycle: int) -> bool:
        """Record why this dispatch attempt failed; always returns False.

        The wake cycle is the earliest future event that can change the
        blocked state.  Retirement is strictly in-order, so of all pending
        completions only the *head* of the instruction window matters: a
        younger access completing earlier cannot unblock the window, free an
        MSHR (DRAM reads re-arm the gate via :meth:`notify_completion`
        instead) or move the retired-instruction count while the head is
        stuck.  The head completion is skipped for front-end-blocked
        finished cores: they dispatch nothing before the front-end is ready
        and have no finish bookkeeping left.  A core with buffered posted
        writes additionally retries whenever the controller issues
        (write-queue space only frees on issue events).
        """
        front = self._ready_cycle
        if front > cycle:
            wake = math.ceil(front)
            consider_head = self.finish_cycle is None
        else:
            wake = FAR_FUTURE
            consider_head = True
        if consider_head and self._outstanding:
            completion = self._outstanding[0].completion_cycle
            if completion is not None and cycle < completion < wake:
                wake = completion
        self._wake_cycle = wake
        self._retry_on_issue = bool(self._pending_posted_writes)
        return False

    def _post_write(self, controller: "MemoryController", address: int, cycle: int) -> None:
        """Send a posted (non-blocking) write to the memory controller.

        Posted writes never stall the core, but they must not vanish either:
        if the write queue is full the address is buffered and retried (in
        order) at the next dispatch attempt.
        """
        if self._pending_posted_writes:
            # Keep the posted-write stream FIFO: never let a new write jump
            # ahead of one that is still waiting for queue space.
            self._pending_posted_writes.append(address)
            return
        request = self.request_pool.acquire(
            address, RequestType.WRITE, self.core_id, cycle
        )
        if not controller.enqueue(request):
            self.request_pool.release(request)
            self._pending_posted_writes.append(address)

    def _drain_posted_writes(self, controller: "MemoryController", cycle: int) -> None:
        """Retry buffered posted writes while the queue accepts them."""
        pending = self._pending_posted_writes
        pool = self.request_pool
        while pending:
            request = pool.acquire(
                pending[0], RequestType.WRITE, self.core_id, cycle
            )
            if not controller.enqueue(request):
                pool.release(request)
                return
            pending.popleft()

    # ------------------------------------------------------------------ #
    # Retirement
    # ------------------------------------------------------------------ #
    def _window_allows(self, dispatch_position: int, cycle: int) -> bool:
        """True if the instruction window has room for ``dispatch_position``."""
        boundary = dispatch_position - self.window_size
        while self._outstanding and self._outstanding[0].position <= boundary:
            access = self._outstanding[0]
            if access.completion_cycle is None or access.completion_cycle > cycle:
                return False
            self._outstanding.popleft()
            self._access_pool.append(access)
        return True

    def _retire(self, cycle: int) -> None:
        """Retire completed accesses and update the instruction count."""
        outstanding = self._outstanding
        progressed = self._dispatched_since_retire
        while outstanding:
            access = outstanding[0]
            completion = access.completion_cycle
            if completion is None or completion > cycle:
                break
            outstanding.popleft()
            self._access_pool.append(access)
            progressed = True
        if progressed:
            self._dispatched_since_retire = False
            if self.finish_cycle is None:
                # Retired instructions are approximated by the front-end
                # position of the oldest un-retired access (in-order
                # retirement); it only moves when an access retires or a new
                # one dispatches, so the check is skipped otherwise.
                retired = self._position
                if outstanding and outstanding[0].position < retired:
                    retired = outstanding[0].position
                self.retired_instructions = retired
                if retired >= self.instruction_target:
                    self.finish_cycle = cycle

    # ------------------------------------------------------------------ #
    # Event hints
    # ------------------------------------------------------------------ #
    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which this core can make progress."""
        best = FAR_FUTURE
        front = self._ready_cycle
        if front > cycle:
            best = math.ceil(front)
        for access in self._outstanding:
            completion = access.completion_cycle
            if completion is not None and cycle < completion < best:
                best = completion
        return best
