"""CPU-side substrate: traces, the shared last-level cache and the cores."""

from repro.cpu.trace import Trace, TraceEntry
from repro.cpu.cache import Cache, CacheAccessResult
from repro.cpu.core import Core

__all__ = ["Trace", "TraceEntry", "Cache", "CacheAccessResult", "Core"]
