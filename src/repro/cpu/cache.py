"""Shared last-level cache model.

The paper's simulated system (Table 2) uses an 8 MiB, 8-way set-associative
shared LLC with 64-byte lines.  The Appendix E experiments (Fig. 14 / 15)
use a much larger LLC, which makes the SPEC-2017-like workloads cache
resident; the cache size is therefore a first-class configuration knob.

The model is a write-back, write-allocate, LRU cache.  It returns, per
access, whether the access hit and the address of any dirty victim line that
must be written back to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(slots=True)
class CacheAccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Physical address of a dirty line evicted by this access (or None).
    writeback_address: Optional[int] = None


#: Shared "hit, no writeback" result returned by ``access_if_hit_pooled``.
#: Treated as immutable by contract (dataclass fields stay writable, but no
#: caller on the pooled path ever assigns to them).
_POOLED_HIT = CacheAccessResult(hit=True)


@dataclass(slots=True)
class CacheStats:
    """Hit / miss / writeback counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A set-associative, write-back, write-allocate LRU cache."""

    def __init__(
        self,
        size_bytes: int = 8 * 1024 * 1024,
        associativity: int = 8,
        line_size: int = 64,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_bytes % (associativity * line_size) != 0:
            raise ValueError("cache size must be a multiple of way size")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = size_bytes // (associativity * line_size)
        # Each set maps tag -> dirty flag, ordered LRU -> MRU.  Plain dicts
        # preserve insertion order, so delete-and-reinsert moves a tag to the
        # MRU end and ``next(iter(set))`` is the LRU victim -- same policy as
        # an OrderedDict, minus its per-node overhead on this hot path.
        self._sets: List[Dict[int, bool]] = [
            dict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_size
        set_index = line % self.num_sets
        tag = line // self.num_sets
        return set_index, tag

    def _rebuild_address(self, set_index: int, tag: int) -> int:
        return (tag * self.num_sets + set_index) * self.line_size

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Access ``address``; allocate on miss; return hit status + writeback."""
        line = address // self.line_size
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]

        dirty = cache_set.pop(tag, None)
        if dirty is not None:
            # Reinsert at the MRU end (dicts preserve insertion order).
            cache_set[tag] = dirty or is_write
            self.stats.hits += 1
            return CacheAccessResult(hit=True)

        self.stats.misses += 1
        writeback_address: Optional[int] = None
        if len(cache_set) >= self.associativity:
            victim_tag = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_tag)
            if victim_dirty:
                writeback_address = self._rebuild_address(set_index, victim_tag)
                self.stats.writebacks += 1
        cache_set[tag] = is_write
        return CacheAccessResult(hit=False, writeback_address=writeback_address)

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is currently cached."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def access_if_hit(self, address: int, is_write: bool) -> Optional[CacheAccessResult]:
        """Perform the access only if it hits; ``None`` (and no state
        change) on a miss.

        The dispatch path probes before allocating (a failed dispatch must
        be side-effect-free); this fuses that probe with the hit access so
        the common LLC-hit case locates the set once instead of twice.
        """
        line = address // self.line_size
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        dirty = cache_set.pop(tag, None)
        if dirty is None:
            return None
        cache_set[tag] = dirty or is_write
        self.stats.hits += 1
        return CacheAccessResult(hit=True)

    def access_if_hit_pooled(
        self, address: int, is_write: bool
    ) -> Optional[CacheAccessResult]:
        """:meth:`access_if_hit` returning a shared hit-result object.

        Callers on the batch fast path only read ``writeback_address`` (always
        ``None`` for a hit) and never mutate or retain the result, so one
        immortal instance replaces the per-hit allocation.
        """
        line = address // self.line_size
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        dirty = cache_set.pop(tag, None)
        if dirty is None:
            return None
        cache_set[tag] = dirty or is_write
        self.stats.hits += 1
        return _POOLED_HIT

    def occupancy(self) -> int:
        """Number of valid lines currently stored."""
        return sum(len(cache_set) for cache_set in self._sets)

    def reset(self) -> None:
        """Invalidate the entire cache and clear statistics."""
        for cache_set in self._sets:
            cache_set.clear()
        self.stats = CacheStats()
