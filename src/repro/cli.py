"""Command-line interface: ``python -m repro``.

Subcommands:

``sweep``
    Expand a declarative (mechanism x N_RH x mix) sweep into jobs and run it
    through the :class:`~repro.experiments.sweep.SweepEngine`, printing the
    aggregated mechanism comparison.  ``--dry-run`` lists the expanded jobs
    (and whether each is already cached) without simulating anything;
    ``--workers N`` executes missing jobs across N worker processes and
    ``--batch`` runs them through the in-process batch-vectorized engine
    instead (fastest on single-CPU machines).

``cache``
    Inspect (``cache info``) or wipe (``cache clear``) the on-disk result
    cache.

``mechanisms``
    List every mechanism name accepted by ``--mechanisms``.

``attack``
    The red-team subsystem (:mod:`repro.attacks`): ``attack list`` prints
    the attack-pattern catalogue, ``attack trace`` compiles one pattern and
    summarises (or saves) the resulting trace, ``attack search`` empirically
    searches for the minimum RowHammer threshold at which a pattern escapes
    a mechanism and compares it with the analytical bound, and ``attack
    compare`` tabulates that boundary across mechanisms.

The on-disk cache location defaults to ``$REPRO_CACHE_DIR`` or
``.repro-cache``; pass ``--no-cache`` for a purely in-memory run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.attacks.patterns import (
    ATTACK_PATTERNS,
    AttackSpec,
    default_search_specs,
    pattern_by_name,
    pattern_names,
)
from repro.attacks.redteam import DEFAULT_NRH_GRID, RedTeamEngine, RedTeamReport
from repro.core.factory import MECHANISM_NAMES
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.figures import format_rows
from repro.experiments.runner import ExperimentRunner, default_mixes
from repro.experiments.sweep import SweepEngine, default_workers
from repro.system.config import paper_system_config
from repro.workloads.mixes import MIX_TYPES

#: Mechanisms ``attack compare`` tabulates by default (one representative of
#: each class: the proposal, the industry on-die default, periodic RFM, and
#: a deterministic controller-side tracker).
DEFAULT_COMPARE_MECHANISMS = ("Chronus", "PRAC-4", "PRFM", "Graphene")

#: Patterns ``attack compare`` uses by default (kept small: the comparison
#: runs |mechanisms| x |grid| x |specs| simulations).
DEFAULT_COMPARE_PATTERNS = ("wave", "single_sided", "rfm_dodge")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Chronus (HPCA 2025) reproduction: sweep engine CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep", help="run a (mechanism x N_RH x mix) performance sweep"
    )
    sweep.add_argument(
        "--mechanisms", nargs="+", default=["Chronus", "PRAC-4"],
        metavar="NAME", help=f"mechanisms to sweep (from: {', '.join(MECHANISM_NAMES)})",
    )
    sweep.add_argument(
        "--nrh", nargs="+", type=int, default=[1024, 128],
        metavar="N", help="RowHammer thresholds to sweep",
    )
    sweep.add_argument(
        "--num-mixes", type=int, default=2, metavar="N",
        help="number of four-core workload mixes (paper: 60)",
    )
    sweep.add_argument(
        "--mix-types", nargs="+", default=None, choices=list(MIX_TYPES),
        help="restrict mixes to these intensity types",
    )
    sweep.add_argument(
        "--accesses", type=int, default=1000, metavar="N",
        help="memory accesses per core (paper: 100M instructions)",
    )
    sweep.add_argument(
        "--channels", type=int, default=1, metavar="N",
        help="memory channels of the simulated system (default: 1, as in Table 2)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_SWEEP_WORKERS, else one per "
             "CPU up to 8; values below 2 run serially)",
    )
    sweep.add_argument(
        "--batch", action="store_true",
        help="run missing jobs through the in-process batch-vectorized "
             "engine (shared trace precomputation + fast kernels; "
             "byte-identical results, fastest on single-CPU machines)",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="keep results in memory only (no on-disk cache)",
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="list the expanded jobs and their cache status, then exit",
    )

    cache = subparsers.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )

    subparsers.add_parser("mechanisms", help="list the available mechanism names")

    attack = subparsers.add_parser(
        "attack", help="attack synthesis and empirical red-team search"
    )
    attack_sub = attack.add_subparsers(dest="attack_command", required=True)

    attack_sub.add_parser("list", help="list the registered attack patterns")

    trace = attack_sub.add_parser(
        "trace", help="compile one attack pattern into a trace"
    )
    trace.add_argument(
        "--pattern", required=True, choices=list(pattern_names()),
        help="attack pattern to compile",
    )
    trace.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        dest="overrides", help="override a pattern parameter (repeatable)",
    )
    trace.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    trace.add_argument(
        "--channel", type=int, default=0, metavar="CH",
        help="target memory channel of the compiled attack (default: 0)",
    )
    trace.add_argument(
        "--channels", type=int, default=1, metavar="N",
        help="memory channels of the addressed system (default: 1)",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the compiled trace in the text format instead of printing stats",
    )

    def add_search_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--nrh", nargs="+", type=int, default=list(DEFAULT_NRH_GRID),
            metavar="N", help="RowHammer thresholds of the grid scan",
        )
        parser.add_argument("--seed", type=int, default=0, help="trace/mechanism seed")
        parser.add_argument(
            "--channels", type=int, default=1, metavar="N",
            help="memory channels of the probed system (default: 1)",
        )
        parser.add_argument(
            "--channel", type=int, default=0, metavar="CH",
            help="channel the synthesised attacks target (default: 0)",
        )
        parser.add_argument(
            "--no-refine", action="store_true",
            help="skip the bisection refinement of the empirical boundary",
        )
        parser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker processes (default: $REPRO_SWEEP_WORKERS, else one "
                 "per CPU up to 8; values below 2 run serially)",
        )
        parser.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
        )
        parser.add_argument(
            "--no-cache", action="store_true",
            help="keep results in memory only (no on-disk cache)",
        )

    search = attack_sub.add_parser(
        "search",
        help="search for the minimum N_RH at which an attack escapes a mechanism",
    )
    search.add_argument(
        "--mechanism", required=True, choices=list(MECHANISM_NAMES),
        help="mechanism to red-team",
    )
    search.add_argument(
        "--patterns", nargs="+", default=None, choices=list(pattern_names()),
        help="restrict the synthesised patterns (default: all)",
    )
    add_search_options(search)
    search.add_argument(
        "--dry-run", action="store_true",
        help="list the grid-scan probe jobs and their cache status, then exit",
    )

    compare = attack_sub.add_parser(
        "compare", help="tabulate the empirical vs analytical boundary per mechanism"
    )
    compare.add_argument(
        "--mechanisms", nargs="+", default=list(DEFAULT_COMPARE_MECHANISMS),
        choices=list(MECHANISM_NAMES), metavar="NAME",
        help=f"mechanisms to compare (default: {', '.join(DEFAULT_COMPARE_MECHANISMS)})",
    )
    compare.add_argument(
        "--patterns", nargs="+", default=list(DEFAULT_COMPARE_PATTERNS),
        choices=list(pattern_names()),
        help=f"patterns to try (default: {', '.join(DEFAULT_COMPARE_PATTERNS)})",
    )
    add_search_options(compare)
    return parser


def _resolve_cache(args: argparse.Namespace) -> ResultCache:
    if getattr(args, "no_cache", False):
        return ResultCache(directory=None)
    directory = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    return ResultCache(directory=directory)


def _cmd_sweep(args: argparse.Namespace) -> int:
    mixes = [
        mix.applications
        for mix in default_mixes(args.num_mixes, mix_types=args.mix_types)
    ]
    if not mixes:
        print("error: no mixes selected", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    try:
        workers = default_workers(auto=True) if args.workers is None else args.workers
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    engine = SweepEngine(cache=cache, workers=workers, batch=args.batch)
    try:
        base_config = paper_system_config().with_overrides(channels=args.channels)
    except ValueError as error:
        print(f"error: --channels: {error}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(
        base_config=base_config,
        accesses_per_core=args.accesses, seed=args.seed, engine=engine,
    )
    try:
        spec = runner.sweep_spec(args.mechanisms, args.nrh, mixes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    jobs = spec.expand()

    if args.dry_run:
        rows = [
            {
                "job": index,
                "workload": job.workload_name,
                "mechanism": job.config.mechanism,
                "nrh": job.config.nrh,
                "cores": job.config.num_cores,
                "accesses": job.accesses_per_core,
                "cached": "yes" if cache.contains(job.key) else "no",
                "key": job.key[:12],
            }
            for index, job in enumerate(jobs)
        ]
        print(format_rows(rows))
        cached = sum(1 for row in rows if row["cached"] == "yes")
        print(
            f"\ndry run: {len(jobs)} jobs ({spec.num_points()} sweep points, "
            f"{cached} cached, {len(jobs) - cached} to simulate, "
            f"workers={workers}{', batch' if args.batch else ''}, "
            f"cache={cache.directory or 'memory-only'})"
        )
        return 0

    try:
        comparisons = runner.compare(args.mechanisms, args.nrh, mixes)
    finally:
        # The pool must not outlive the command, error or not.
        engine.close()
    rows = [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
            "normalized_energy": c.mean_normalized_energy,
            "is_secure": c.is_secure,
        }
        for c in comparisons
    ]
    print(format_rows(rows))
    print()
    for line in engine.last_run_report.summary_lines():
        print(line)
    print(f"{engine.executed_jobs} jobs simulated; {cache.summary()}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _resolve_cache(args)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    print(f"cache directory: {cache.directory}")
    print(f"entries: {cache.disk_entry_count()}")
    return 0


def _cmd_mechanisms() -> int:
    for name in MECHANISM_NAMES:
        print(name)
    return 0


# --------------------------------------------------------------------------- #
# attack subcommands
# --------------------------------------------------------------------------- #

def _cmd_attack_list() -> int:
    rows = [
        {
            "pattern": pattern.name,
            "summary": pattern.summary,
            "defaults": ",".join(f"{k}={v}" for k, v in pattern.defaults),
            "variants": len(pattern.search_variants),
        }
        for pattern in ATTACK_PATTERNS.values()
    ]
    print(format_rows(rows))
    print(f"\n{len(rows)} registered attack patterns")
    return 0


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, int]:
    overrides: Dict[str, int] = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise ValueError(f"expected NAME=VALUE, got {pair!r}")
        overrides[name] = int(value)
    return overrides


def _cmd_attack_trace(args: argparse.Namespace) -> int:
    try:
        spec = AttackSpec.create(
            args.pattern, _parse_overrides(args.overrides), seed=args.seed,
            channel=args.channel,
        )
        organization = paper_system_config().with_overrides(
            channels=args.channels
        ).organization
        trace = spec.compile(organization=organization)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.out:
        trace.save(args.out)
        print(f"saved {trace.memory_accesses} accesses to {args.out}")
        return 0
    print(f"pattern: {spec.label} (seed {spec.seed})")
    print(f"  {pattern_by_name(spec.pattern).summary}")
    for name, value in sorted(spec.resolved_params.items()):
        print(f"  {name} = {value}")
    print(
        f"trace: {trace.memory_accesses} accesses, "
        f"{trace.total_instructions} instructions, "
        f"{len({entry.address for entry in trace})} distinct addresses"
    )
    return 0


def _redteam_engine(args: argparse.Namespace) -> RedTeamEngine:
    workers = default_workers(auto=True) if args.workers is None else args.workers
    engine = SweepEngine(cache=_resolve_cache(args), workers=workers)
    base_config = paper_system_config().with_overrides(
        channels=getattr(args, "channels", 1)
    )
    return RedTeamEngine(engine=engine, base_config=base_config, seed=args.seed)


def _search_report_rows(report: RedTeamReport) -> List[dict]:
    rows = []
    for nrh in sorted({probe.nrh for probe in report.probes}):
        best = report.best_probe(nrh)
        rows.append(
            {
                "nrh": nrh,
                "configured": "yes" if best.configured else "no",
                "secure_config": "yes" if best.secure_config else "no",
                "best_attack": best.spec_label,
                "max_disturbance": best.max_disturbance,
                "escaped": "yes" if best.escaped else "no",
            }
        )
    return rows


def _format_nrh(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def _print_search_summary(report: RedTeamReport) -> None:
    print(
        f"\nempirical: min escaping N_RH = "
        f"{_format_nrh(report.empirical_min_escaping_nrh)}, "
        f"max escaping = {_format_nrh(report.empirical_max_escaping_nrh)}, "
        f"min secure = {_format_nrh(report.empirical_min_secure_nrh)}"
    )
    if report.empirical_min_escaping_nrh is None:
        print(
            "  (no escape observed: the mechanism held down to the smallest "
            "probed threshold at this simulation scale)"
        )
    analytical = report.analytical_min_secure
    if analytical is None:
        print("analytical: no wave-attack bound modelled for this mechanism")
    else:
        print(f"analytical: min secure N_RH = {analytical}")
        disagreement = report.disagreement
        print(f"agreement: {'no -- ' + disagreement if disagreement else 'yes'}")


def _check_channel_args(args: argparse.Namespace) -> Optional[str]:
    try:
        paper_system_config().with_overrides(channels=args.channels)
    except ValueError as error:
        return f"--channels: {error}"
    if not 0 <= args.channel < args.channels:
        return f"--channel {args.channel} out of range [0, {args.channels})"
    return None


def _cmd_attack_search(args: argparse.Namespace) -> int:
    error = _check_channel_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    redteam = _redteam_engine(args)
    specs = default_search_specs(args.patterns, seed=args.seed, channel=args.channel)

    if args.dry_run:
        try:
            jobs = redteam.probe_jobs(args.mechanism, sorted(set(args.nrh)), specs)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        cache = redteam.engine.cache
        # A spec's access count is independent of N_RH: compile each distinct
        # spec once instead of once per grid point.  Compile against the
        # probed organization, or channel-targeted specs cannot encode.
        organization = redteam.base_config.organization
        accesses = {
            spec: spec.compile(organization=organization).memory_accesses
            for spec in {job.attack for job in jobs}
        }
        rows = [
            {
                "job": index,
                "workload": job.workload_name,
                "nrh": job.config.nrh,
                "accesses": accesses[job.attack],
                "cached": "yes" if cache.contains(job.key) else "no",
                "key": job.key[:12],
            }
            for index, job in enumerate(jobs)
        ]
        print(format_rows(rows))
        cached = sum(1 for row in rows if row["cached"] == "yes")
        print(
            f"\ndry run: {len(jobs)} grid-scan probes ({cached} cached, "
            f"{len(jobs) - cached} to simulate, workers={redteam.engine.workers}, "
            f"cache={cache.directory or 'memory-only'})"
        )
        return 0

    try:
        report = redteam.search(
            args.mechanism, args.nrh, specs=specs,
            refine=not args.no_refine,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        redteam.engine.close()
    print(f"red-team search: {args.mechanism} ({len(specs)} attack specs per N_RH)")
    print(format_rows(_search_report_rows(report)))
    _print_search_summary(report)
    print(
        f"\n{redteam.engine.executed_jobs} probes simulated; "
        f"{redteam.engine.cache.summary()}"
    )
    return 0


def _cmd_attack_compare(args: argparse.Namespace) -> int:
    error = _check_channel_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    redteam = _redteam_engine(args)
    specs = default_search_specs(args.patterns, seed=args.seed, channel=args.channel)
    rows = []
    try:
        for mechanism in args.mechanisms:
            report = redteam.search(
                mechanism, args.nrh, specs=specs,
                refine=not args.no_refine,
            )
            disagreement = report.disagreement
            rows.append(
                {
                    "mechanism": mechanism,
                    "empirical_min_escaping": _format_nrh(report.empirical_min_escaping_nrh),
                    "empirical_max_escaping": _format_nrh(report.empirical_max_escaping_nrh),
                    "empirical_min_secure": _format_nrh(report.empirical_min_secure_nrh),
                    "analytical_min_secure": _format_nrh(report.analytical_min_secure),
                    "agreement": (
                        "-" if report.analytical_min_secure is None
                        else ("no" if disagreement else "yes")
                    ),
                }
            )
    finally:
        # The pool must not outlive the command, error or not.
        redteam.engine.close()
    print(format_rows(rows))
    print(
        f"\n{redteam.engine.executed_jobs} probes simulated; "
        f"{redteam.engine.cache.summary()}"
    )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.attack_command == "list":
        return _cmd_attack_list()
    if args.attack_command == "trace":
        return _cmd_attack_trace(args)
    if args.attack_command == "search":
        return _cmd_attack_search(args)
    if args.attack_command == "compare":
        return _cmd_attack_compare(args)
    raise AssertionError(f"unhandled attack command {args.attack_command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "mechanisms":
        return _cmd_mechanisms()
    if args.command == "attack":
        return _cmd_attack(args)
    raise AssertionError(f"unhandled command {args.command!r}")
