"""Command-line interface: ``python -m repro``.

Subcommands:

``sweep``
    Expand a declarative (mechanism x N_RH x mix) sweep into jobs and run it
    through the :class:`~repro.experiments.sweep.SweepEngine`, printing the
    aggregated mechanism comparison.  ``--dry-run`` lists the expanded jobs
    (and whether each is already cached) without simulating anything;
    ``--workers N`` executes missing jobs across N worker processes and
    ``--batch`` runs them through the in-process batch-vectorized engine
    instead (fastest on single-CPU machines).

``cache``
    Inspect (``cache info``) or wipe (``cache clear``) the on-disk result
    cache.

``mechanisms``
    List every mechanism name accepted by ``--mechanisms``.

``attack``
    The red-team subsystem (:mod:`repro.attacks`): ``attack list`` prints
    the attack-pattern catalogue, ``attack trace`` compiles one pattern and
    summarises (or saves) the resulting trace, ``attack search`` empirically
    searches for the minimum RowHammer threshold at which a pattern escapes
    a mechanism and compares it with the analytical bound, and ``attack
    compare`` tabulates that boundary across mechanisms.

``artifact``
    The result-artifact toolbox (:mod:`repro.artifacts`): ``artifact
    keygen`` creates an HMAC key file, ``artifact verify`` fully checks one
    artifact (typed error + nonzero exit on any corruption), ``artifact
    show`` prints its provenance and records, and ``artifact diff``
    compares two artifacts job-by-job -- the cross-PR result-diff tool.

``lint``
    reprolint, the project-aware static contract checker
    (:mod:`repro.lint`): six AST rules enforce the no-reflection,
    hot-path-allocation, determinism, canonical-JSON, cache-key and
    event-source invariants documented in docs/LINTING.md.  Exit 0 means
    clean against the committed baseline; any *new* finding exits 1.

``serve``
    Run the long-lived simulation service (:mod:`repro.service`): clients
    submit sweep / attack-search jobs over HTTP and stream live progress
    over WebSocket, all multiplexed onto one shared engine and cache.
    ``--auth-key FILE`` authenticates clients (HMAC of the client id,
    compared in constant time; 401 otherwise) and signs served artifacts.

``client``
    The matching thin client: ``client submit`` posts a job (``--watch``
    streams its events), ``client watch|status|cancel`` manage one job, and
    ``client health|stats|shutdown`` poke the server.  Used by the CI smoke
    test and the service load benchmark.

The on-disk cache location defaults to ``$REPRO_CACHE_DIR`` or
``.repro-cache``; pass ``--no-cache`` for a purely in-memory run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.attacks.patterns import (
    ATTACK_PATTERNS,
    AttackSpec,
    default_search_specs,
    pattern_by_name,
    pattern_names,
)
from repro.attacks.redteam import DEFAULT_NRH_GRID, RedTeamEngine, RedTeamReport
from repro.core.factory import MECHANISM_NAMES
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.figures import format_rows
from repro.experiments.runner import ExperimentRunner, default_mixes
from repro.experiments.sweep import SweepEngine, default_workers
from repro.system.config import paper_system_config
from repro.workloads.mixes import MIX_TYPES

#: Mechanisms ``attack compare`` tabulates by default (one representative of
#: each class: the proposal, the industry on-die default, periodic RFM, and
#: a deterministic controller-side tracker).
DEFAULT_COMPARE_MECHANISMS = ("Chronus", "PRAC-4", "PRFM", "Graphene")

#: Patterns ``attack compare`` uses by default (kept small: the comparison
#: runs |mechanisms| x |grid| x |specs| simulations).
DEFAULT_COMPARE_PATTERNS = ("wave", "single_sided", "rfm_dodge")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Chronus (HPCA 2025) reproduction: sweep engine CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep", help="run a (mechanism x N_RH x mix) performance sweep"
    )
    sweep.add_argument(
        "--mechanisms", nargs="+", default=["Chronus", "PRAC-4"],
        metavar="NAME", help=f"mechanisms to sweep (from: {', '.join(MECHANISM_NAMES)})",
    )
    sweep.add_argument(
        "--nrh", nargs="+", type=int, default=[1024, 128],
        metavar="N", help="RowHammer thresholds to sweep",
    )
    sweep.add_argument(
        "--num-mixes", type=int, default=2, metavar="N",
        help="number of four-core workload mixes (paper: 60)",
    )
    sweep.add_argument(
        "--mix-types", nargs="+", default=None, choices=list(MIX_TYPES),
        help="restrict mixes to these intensity types",
    )
    sweep.add_argument(
        "--accesses", type=int, default=1000, metavar="N",
        help="memory accesses per core (paper: 100M instructions)",
    )
    sweep.add_argument(
        "--channels", type=int, default=1, metavar="N",
        help="memory channels of the simulated system (default: 1, as in Table 2)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_SWEEP_WORKERS, else one per "
             "CPU up to 8; values below 2 run serially)",
    )
    sweep.add_argument(
        "--batch", action="store_true",
        help="run missing jobs through the in-process batch-vectorized "
             "engine (shared trace precomputation + fast kernels; "
             "byte-identical results, fastest on single-CPU machines)",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="keep results in memory only (no on-disk cache)",
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="list the expanded jobs and their cache status, then exit",
    )
    sweep.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="also write the run report (RunReport.as_dict) as JSON -- the "
             "same serialization the service streams and the benches record",
    )
    sweep.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="emit the run as a signed, self-describing result artifact "
             "(full SystemConfig + per-job results; see docs/ARTIFACTS.md)",
    )
    sweep.add_argument(
        "--sign-key", default=None, metavar="FILE",
        help="HMAC key file signing --artifact (create one with "
             "'artifact keygen')",
    )

    cache = subparsers.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )

    subparsers.add_parser("mechanisms", help="list the available mechanism names")

    lint = subparsers.add_parser(
        "lint",
        help="run reprolint, the project-aware static contract checker",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    attack = subparsers.add_parser(
        "attack", help="attack synthesis and empirical red-team search"
    )
    attack_sub = attack.add_subparsers(dest="attack_command", required=True)

    attack_sub.add_parser("list", help="list the registered attack patterns")

    trace = attack_sub.add_parser(
        "trace", help="compile one attack pattern into a trace"
    )
    trace.add_argument(
        "--pattern", required=True, choices=list(pattern_names()),
        help="attack pattern to compile",
    )
    trace.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        dest="overrides", help="override a pattern parameter (repeatable)",
    )
    trace.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    trace.add_argument(
        "--channel", type=int, default=0, metavar="CH",
        help="target memory channel of the compiled attack (default: 0)",
    )
    trace.add_argument(
        "--channels", type=int, default=1, metavar="N",
        help="memory channels of the addressed system (default: 1)",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the compiled trace in the text format instead of printing stats",
    )

    def add_search_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--nrh", nargs="+", type=int, default=list(DEFAULT_NRH_GRID),
            metavar="N", help="RowHammer thresholds of the grid scan",
        )
        parser.add_argument("--seed", type=int, default=0, help="trace/mechanism seed")
        parser.add_argument(
            "--channels", type=int, default=1, metavar="N",
            help="memory channels of the probed system (default: 1)",
        )
        parser.add_argument(
            "--channel", type=int, default=0, metavar="CH",
            help="channel the synthesised attacks target (default: 0)",
        )
        parser.add_argument(
            "--no-refine", action="store_true",
            help="skip the bisection refinement of the empirical boundary",
        )
        parser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker processes (default: $REPRO_SWEEP_WORKERS, else one "
                 "per CPU up to 8; values below 2 run serially)",
        )
        parser.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
        )
        parser.add_argument(
            "--no-cache", action="store_true",
            help="keep results in memory only (no on-disk cache)",
        )

    search = attack_sub.add_parser(
        "search",
        help="search for the minimum N_RH at which an attack escapes a mechanism",
    )
    search.add_argument(
        "--mechanism", required=True, choices=list(MECHANISM_NAMES),
        help="mechanism to red-team",
    )
    search.add_argument(
        "--patterns", nargs="+", default=None, choices=list(pattern_names()),
        help="restrict the synthesised patterns (default: all)",
    )
    add_search_options(search)
    search.add_argument(
        "--dry-run", action="store_true",
        help="list the grid-scan probe jobs and their cache status, then exit",
    )
    search.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="emit the probe outcomes as a result artifact "
             "(see docs/ARTIFACTS.md)",
    )
    search.add_argument(
        "--sign-key", default=None, metavar="FILE",
        help="HMAC key file signing --artifact",
    )

    compare = attack_sub.add_parser(
        "compare", help="tabulate the empirical vs analytical boundary per mechanism"
    )
    compare.add_argument(
        "--mechanisms", nargs="+", default=list(DEFAULT_COMPARE_MECHANISMS),
        choices=list(MECHANISM_NAMES), metavar="NAME",
        help=f"mechanisms to compare (default: {', '.join(DEFAULT_COMPARE_MECHANISMS)})",
    )
    compare.add_argument(
        "--patterns", nargs="+", default=list(DEFAULT_COMPARE_PATTERNS),
        choices=list(pattern_names()),
        help=f"patterns to try (default: {', '.join(DEFAULT_COMPARE_PATTERNS)})",
    )
    add_search_options(compare)

    artifact = subparsers.add_parser(
        "artifact", help="verify, inspect and diff result artifacts"
    )
    artifact_sub = artifact.add_subparsers(dest="artifact_command", required=True)

    keygen = artifact_sub.add_parser(
        "keygen", help="generate an HMAC signing/auth key file"
    )
    keygen.add_argument("path", help="where to write the key (hex, mode 0600)")
    keygen.add_argument(
        "--force", action="store_true", help="overwrite an existing key file"
    )

    verify = artifact_sub.add_parser(
        "verify",
        help="fully verify one artifact (nonzero exit on any corruption)",
    )
    verify.add_argument("path", help="artifact to verify")
    verify.add_argument(
        "--key", default=None, metavar="FILE",
        help="HMAC key file; with it the signature must verify too",
    )

    show = artifact_sub.add_parser(
        "show", help="print an artifact's provenance meta and record listing"
    )
    show.add_argument("path", help="artifact to show")
    show.add_argument(
        "--key", default=None, metavar="FILE",
        help="HMAC key file (verifies the signature before showing)",
    )
    show.add_argument(
        "--records", action="store_true",
        help="also print every record payload as JSON lines",
    )

    adiff = artifact_sub.add_parser(
        "diff", help="compare two artifacts job-by-job"
    )
    adiff.add_argument("left", help="baseline artifact")
    adiff.add_argument("right", help="artifact to compare against the baseline")
    adiff.add_argument(
        "--all", action="store_true", dest="include_volatile",
        help="also compare volatile kinds (timing reports)",
    )

    serve = subparsers.add_parser(
        "serve", help="run the simulation service (HTTP + WebSocket job server)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8123,
        help="bind port (0 picks a free port and prints it)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes of the shared engine (default: "
             "$REPRO_SWEEP_WORKERS, else serial)",
    )
    serve.add_argument(
        "--batch", action="store_true",
        help="execute jobs through the in-process batch-vectorized engine",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="bounded job-queue depth; overflow answers 429 (default: 32)",
    )
    serve.add_argument(
        "--client-cap", type=int, default=4, metavar="N",
        help="max jobs one client may have queued or running (default: 4)",
    )
    serve.add_argument(
        "--rate", type=float, default=10.0, metavar="R",
        help="per-client submissions per second refill rate (default: 10)",
    )
    serve.add_argument(
        "--burst", type=int, default=20, metavar="N",
        help="per-client submission token-bucket burst (default: 20)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="keep results in memory only (no on-disk cache)",
    )
    serve.add_argument(
        "--auth-key", default=None, metavar="FILE",
        help="HMAC key file: clients must send X-Auth-Token = "
             "HMAC(key, client id) or are answered 401, and served "
             "artifacts are signed with the same key",
    )

    client = subparsers.add_parser(
        "client", help="talk to a running simulation service"
    )
    client.add_argument(
        "--server", default="127.0.0.1:8123", metavar="HOST:PORT",
        help="service address (default: 127.0.0.1:8123)",
    )
    client.add_argument(
        "--client-id", default="cli", metavar="NAME",
        help="client identity for fairness/rate accounting (default: cli)",
    )
    client.add_argument(
        "--auth-key", default=None, metavar="FILE",
        help="HMAC key file matching the server's --auth-key",
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)

    submit = client_sub.add_parser("submit", help="submit a job")
    submit.add_argument(
        "--kind", choices=["sweep", "attack_search"], default="sweep",
        help="job kind (default: sweep)",
    )
    submit.add_argument(
        "--spec", default=None, metavar="JSON_OR_PATH",
        help="spec as inline JSON or a path to a JSON file; without it a "
             "sweep spec is built from --mechanisms/--nrh/--num-mixes/--accesses",
    )
    submit.add_argument(
        "--mechanisms", nargs="+", default=["Chronus"], metavar="NAME",
        help="mechanisms of the built-in sweep spec",
    )
    submit.add_argument(
        "--nrh", nargs="+", type=int, default=[1024], metavar="N",
        help="N_RH values of the built-in sweep spec",
    )
    submit.add_argument("--num-mixes", type=int, default=1, metavar="N")
    submit.add_argument("--accesses", type=int, default=300, metavar="N")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--priority", type=int, default=0, help="0 (urgent) .. 9 (batch)"
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stream the job's progress events until it finishes",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="--watch timeout in seconds (default: 300)",
    )

    watch = client_sub.add_parser("watch", help="stream one job's events")
    watch.add_argument("job_id")
    watch.add_argument("--timeout", type=float, default=300.0)

    status = client_sub.add_parser("status", help="print one job's snapshot")
    status.add_argument("job_id")
    status.add_argument(
        "--full", action="store_true", help="include the full event log"
    )

    cancel = client_sub.add_parser("cancel", help="cancel one job")
    cancel.add_argument("job_id")

    cartifact = client_sub.add_parser(
        "artifact", help="download one finished job's signed result artifact"
    )
    cartifact.add_argument("job_id")
    cartifact.add_argument(
        "--out", required=True, metavar="PATH",
        help="where to write the artifact",
    )

    client_sub.add_parser("health", help="print the service health document")
    client_sub.add_parser("stats", help="print the service statistics")
    client_sub.add_parser("shutdown", help="ask the service to stop cleanly")
    return parser


def _resolve_cache(args: argparse.Namespace) -> ResultCache:
    if getattr(args, "no_cache", False):
        return ResultCache(directory=None)
    directory = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    return ResultCache(directory=directory)


def _load_key_arg(path: Optional[str]) -> Optional[bytes]:
    """Load an HMAC key file argument; ``None`` stays ``None``.

    Raises :class:`repro.artifacts.ArtifactError` (the caller turns it into
    exit code 2 -- a usage error, not a verification failure).
    """
    if path is None:
        return None
    from repro.artifacts import load_key_file

    return load_key_file(path)


def _cmd_sweep(args: argparse.Namespace) -> int:
    mixes = [
        mix.applications
        for mix in default_mixes(args.num_mixes, mix_types=args.mix_types)
    ]
    if not mixes:
        print("error: no mixes selected", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    try:
        workers = default_workers(auto=True) if args.workers is None else args.workers
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    engine = SweepEngine(cache=cache, workers=workers, batch=args.batch)
    try:
        base_config = paper_system_config().with_overrides(channels=args.channels)
    except ValueError as error:
        print(f"error: --channels: {error}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(
        base_config=base_config,
        accesses_per_core=args.accesses, seed=args.seed, engine=engine,
    )
    try:
        spec = runner.sweep_spec(args.mechanisms, args.nrh, mixes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    jobs = spec.expand()

    if args.dry_run:
        rows = [
            {
                "job": index,
                "workload": job.workload_name,
                "mechanism": job.config.mechanism,
                "nrh": job.config.nrh,
                "cores": job.config.num_cores,
                "accesses": job.accesses_per_core,
                "cached": "yes" if cache.contains(job.key) else "no",
                "key": job.key[:12],
            }
            for index, job in enumerate(jobs)
        ]
        print(format_rows(rows))
        cached = sum(1 for row in rows if row["cached"] == "yes")
        print(
            f"\ndry run: {len(jobs)} jobs ({spec.num_points()} sweep points, "
            f"{cached} cached, {len(jobs) - cached} to simulate, "
            f"workers={workers}{', batch' if args.batch else ''}, "
            f"cache={cache.directory or 'memory-only'})"
        )
        return 0

    try:
        comparisons = runner.compare(args.mechanisms, args.nrh, mixes)
    finally:
        # The pool must not outlive the command, error or not.
        engine.close()
    rows = [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
            "normalized_energy": c.mean_normalized_energy,
            "is_secure": c.is_secure,
        }
        for c in comparisons
    ]
    print(format_rows(rows))
    print()
    for line in engine.last_run_report.summary_lines():
        print(line)
    print(f"{engine.executed_jobs} jobs simulated; {cache.summary()}")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(engine.last_run_report.as_dict(), handle, indent=2, sort_keys=True)
        print(f"run report written to {args.report_json}")
    if args.artifact:
        from repro.artifacts import ArtifactError
        from repro.artifacts.emit import emit_run_artifact

        try:
            key = _load_key_arg(args.sign_key)
            # compare() ran every job through the engine, so the cache's
            # memory layer holds every result.
            results = {job.key: cache.get(job.key) for job in jobs}
            count = emit_run_artifact(
                args.artifact, jobs, results,
                report=engine.last_run_report, base_config=base_config,
                key=key,
                extra_meta={"command": "sweep", "accesses": args.accesses,
                            "seed": args.seed},
            )
        except ArtifactError as error:
            print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
            return 2
        signed = " (signed)" if key is not None else ""
        print(f"artifact written to {args.artifact}: {count} record(s){signed}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _resolve_cache(args)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    print(f"cache directory: {cache.directory}")
    print(f"entries: {cache.disk_entry_count()}")
    return 0


def _cmd_mechanisms() -> int:
    for name in MECHANISM_NAMES:
        print(name)
    return 0


# --------------------------------------------------------------------------- #
# attack subcommands
# --------------------------------------------------------------------------- #

def _cmd_attack_list() -> int:
    rows = [
        {
            "pattern": pattern.name,
            "summary": pattern.summary,
            "defaults": ",".join(f"{k}={v}" for k, v in pattern.defaults),
            "variants": len(pattern.search_variants),
        }
        for pattern in ATTACK_PATTERNS.values()
    ]
    print(format_rows(rows))
    print(f"\n{len(rows)} registered attack patterns")
    return 0


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, int]:
    overrides: Dict[str, int] = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise ValueError(f"expected NAME=VALUE, got {pair!r}")
        overrides[name] = int(value)
    return overrides


def _cmd_attack_trace(args: argparse.Namespace) -> int:
    try:
        spec = AttackSpec.create(
            args.pattern, _parse_overrides(args.overrides), seed=args.seed,
            channel=args.channel,
        )
        organization = paper_system_config().with_overrides(
            channels=args.channels
        ).organization
        trace = spec.compile(organization=organization)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.out:
        trace.save(args.out)
        print(f"saved {trace.memory_accesses} accesses to {args.out}")
        return 0
    print(f"pattern: {spec.label} (seed {spec.seed})")
    print(f"  {pattern_by_name(spec.pattern).summary}")
    for name, value in sorted(spec.resolved_params.items()):
        print(f"  {name} = {value}")
    print(
        f"trace: {trace.memory_accesses} accesses, "
        f"{trace.total_instructions} instructions, "
        f"{len({entry.address for entry in trace})} distinct addresses"
    )
    return 0


def _redteam_engine(args: argparse.Namespace) -> RedTeamEngine:
    workers = default_workers(auto=True) if args.workers is None else args.workers
    engine = SweepEngine(cache=_resolve_cache(args), workers=workers)
    base_config = paper_system_config().with_overrides(
        channels=getattr(args, "channels", 1)
    )
    return RedTeamEngine(engine=engine, base_config=base_config, seed=args.seed)


def _search_report_rows(report: RedTeamReport) -> List[dict]:
    rows = []
    for nrh in sorted({probe.nrh for probe in report.probes}):
        best = report.best_probe(nrh)
        rows.append(
            {
                "nrh": nrh,
                "configured": "yes" if best.configured else "no",
                "secure_config": "yes" if best.secure_config else "no",
                "best_attack": best.spec_label,
                "max_disturbance": best.max_disturbance,
                "escaped": "yes" if best.escaped else "no",
            }
        )
    return rows


def _format_nrh(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def _print_search_summary(report: RedTeamReport) -> None:
    print(
        f"\nempirical: min escaping N_RH = "
        f"{_format_nrh(report.empirical_min_escaping_nrh)}, "
        f"max escaping = {_format_nrh(report.empirical_max_escaping_nrh)}, "
        f"min secure = {_format_nrh(report.empirical_min_secure_nrh)}"
    )
    if report.empirical_min_escaping_nrh is None:
        print(
            "  (no escape observed: the mechanism held down to the smallest "
            "probed threshold at this simulation scale)"
        )
    analytical = report.analytical_min_secure
    if analytical is None:
        print("analytical: no wave-attack bound modelled for this mechanism")
    else:
        print(f"analytical: min secure N_RH = {analytical}")
        disagreement = report.disagreement
        print(f"agreement: {'no -- ' + disagreement if disagreement else 'yes'}")


def _check_channel_args(args: argparse.Namespace) -> Optional[str]:
    try:
        paper_system_config().with_overrides(channels=args.channels)
    except ValueError as error:
        return f"--channels: {error}"
    if not 0 <= args.channel < args.channels:
        return f"--channel {args.channel} out of range [0, {args.channels})"
    return None


def _cmd_attack_search(args: argparse.Namespace) -> int:
    error = _check_channel_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    redteam = _redteam_engine(args)
    specs = default_search_specs(args.patterns, seed=args.seed, channel=args.channel)

    if args.dry_run:
        try:
            jobs = redteam.probe_jobs(args.mechanism, sorted(set(args.nrh)), specs)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        cache = redteam.engine.cache
        # A spec's access count is independent of N_RH: compile each distinct
        # spec once instead of once per grid point.  Compile against the
        # probed organization, or channel-targeted specs cannot encode.
        organization = redteam.base_config.organization
        accesses = {
            spec: spec.compile(organization=organization).memory_accesses
            for spec in {job.attack for job in jobs}
        }
        rows = [
            {
                "job": index,
                "workload": job.workload_name,
                "nrh": job.config.nrh,
                "accesses": accesses[job.attack],
                "cached": "yes" if cache.contains(job.key) else "no",
                "key": job.key[:12],
            }
            for index, job in enumerate(jobs)
        ]
        print(format_rows(rows))
        cached = sum(1 for row in rows if row["cached"] == "yes")
        print(
            f"\ndry run: {len(jobs)} grid-scan probes ({cached} cached, "
            f"{len(jobs) - cached} to simulate, workers={redteam.engine.workers}, "
            f"cache={cache.directory or 'memory-only'})"
        )
        return 0

    try:
        report = redteam.search(
            args.mechanism, args.nrh, specs=specs,
            refine=not args.no_refine,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        redteam.engine.close()
    print(f"red-team search: {args.mechanism} ({len(specs)} attack specs per N_RH)")
    print(format_rows(_search_report_rows(report)))
    _print_search_summary(report)
    print(
        f"\n{redteam.engine.executed_jobs} probes simulated; "
        f"{redteam.engine.cache.summary()}"
    )
    if args.artifact:
        from repro.artifacts import ArtifactError
        from repro.artifacts.emit import emit_probe_artifact

        try:
            key = _load_key_arg(args.sign_key)
            count = emit_probe_artifact(
                args.artifact, report.probes,
                base_config=redteam.base_config, key=key,
                extra_meta={"command": "attack search",
                            "mechanism": args.mechanism, "seed": args.seed},
            )
        except ArtifactError as error:
            print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
            return 2
        signed = " (signed)" if key is not None else ""
        print(f"artifact written to {args.artifact}: {count} record(s){signed}")
    return 0


def _cmd_attack_compare(args: argparse.Namespace) -> int:
    error = _check_channel_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    redteam = _redteam_engine(args)
    specs = default_search_specs(args.patterns, seed=args.seed, channel=args.channel)
    rows = []
    try:
        for mechanism in args.mechanisms:
            report = redteam.search(
                mechanism, args.nrh, specs=specs,
                refine=not args.no_refine,
            )
            disagreement = report.disagreement
            rows.append(
                {
                    "mechanism": mechanism,
                    "empirical_min_escaping": _format_nrh(report.empirical_min_escaping_nrh),
                    "empirical_max_escaping": _format_nrh(report.empirical_max_escaping_nrh),
                    "empirical_min_secure": _format_nrh(report.empirical_min_secure_nrh),
                    "analytical_min_secure": _format_nrh(report.analytical_min_secure),
                    "agreement": (
                        "-" if report.analytical_min_secure is None
                        else ("no" if disagreement else "yes")
                    ),
                }
            )
    finally:
        # The pool must not outlive the command, error or not.
        redteam.engine.close()
    print(format_rows(rows))
    print(
        f"\n{redteam.engine.executed_jobs} probes simulated; "
        f"{redteam.engine.cache.summary()}"
    )
    return 0


# --------------------------------------------------------------------------- #
# artifact subcommands
# --------------------------------------------------------------------------- #

def _cmd_artifact_keygen(args: argparse.Namespace) -> int:
    import os

    from repro.artifacts import write_key_file

    if os.path.exists(args.path) and not args.force:
        print(
            f"error: {args.path} exists (pass --force to overwrite)",
            file=sys.stderr,
        )
        return 2
    key = write_key_file(args.path)
    print(f"wrote {len(key)}-byte key to {args.path} (mode 0600)")
    return 0


def _cmd_artifact_verify(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactError, ArtifactKeyError, verify_artifact

    try:
        key = _load_key_arg(args.key)
    except ArtifactKeyError as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 2
    try:
        summary = verify_artifact(args.path, key=key)
    except ArtifactError as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    print(f"OK: {args.path} verified ({summary['records']} records)")
    return 0


def _cmd_artifact_show(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactError, ArtifactKeyError, ArtifactReader

    try:
        key = _load_key_arg(args.key)
    except ArtifactKeyError as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 2
    try:
        reader = ArtifactReader(args.path, key=key)
    except ArtifactError as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    print(json.dumps({"meta": reader.meta}, indent=2, sort_keys=True))
    rows = [
        {
            "seq": record.seq,
            "kind": record.kind,
            "bytes": record.length,
            "key": str(record.payload.get("key", "-"))[:48],
        }
        for record in reader.records()
    ]
    if rows:
        print(format_rows(rows))
    summary = reader.verify_summary()
    print(
        f"\n{summary['records']} record(s), "
        f"{'signed' if summary['signed'] else 'unsigned'}"
        f"{' + signature verified' if summary['signature_verified'] else ''}"
    )
    if args.records:
        for record in reader.records():
            print(json.dumps(record.payload, sort_keys=True))
    return 0


def _cmd_artifact_diff(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactError, ArtifactReader, diff_artifacts

    try:
        left = ArtifactReader(args.left)
        right = ArtifactReader(args.right)
    except ArtifactError as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 2
    outcome = diff_artifacts(
        left, right, include_volatile=args.include_volatile
    )
    for line in outcome.summary_lines():
        print(line)
    return 0 if outcome.is_empty else 1


def _cmd_artifact(args: argparse.Namespace) -> int:
    if args.artifact_command == "keygen":
        return _cmd_artifact_keygen(args)
    if args.artifact_command == "verify":
        return _cmd_artifact_verify(args)
    if args.artifact_command == "show":
        return _cmd_artifact_show(args)
    if args.artifact_command == "diff":
        return _cmd_artifact_diff(args)
    raise AssertionError(f"unhandled artifact command {args.artifact_command!r}")


# --------------------------------------------------------------------------- #
# serve / client subcommands
# --------------------------------------------------------------------------- #

def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import SimulationService, run_service

    try:
        workers = default_workers() if args.workers is None else max(0, args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else (
        args.cache_dir if args.cache_dir is not None else default_cache_dir()
    )
    from repro.artifacts import ArtifactKeyError

    try:
        auth_key = _load_key_arg(args.auth_key)
    except ArtifactKeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = SimulationService.build(
        cache_dir=cache_dir,
        workers=workers,
        batch=args.batch,
        max_queue_depth=args.queue_depth,
        per_client_active=args.client_cap,
        rate=args.rate,
        burst=args.burst,
        auth_key=auth_key,
    )
    try:
        asyncio.run(run_service(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        # The engine's atexit hook reaps the pool even on a hard interrupt;
        # this path just keeps the exit quiet.
        print("interrupted", file=sys.stderr)
    return 0


def _parse_server(address: str) -> tuple:
    host, separator, port_text = address.rpartition(":")
    if not separator:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port_text)


def _client_spec(args: argparse.Namespace) -> Dict[str, object]:
    """The spec payload of ``client submit`` (inline JSON, file, or flags)."""
    import os

    if args.spec is not None:
        text = args.spec
        if os.path.exists(text):
            with open(text, "r", encoding="utf-8") as handle:
                text = handle.read()
        spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError("spec must be a JSON object")
        return spec
    if args.kind != "sweep":
        raise ValueError("--spec is required for non-sweep submissions")
    return {
        "mechanisms": args.mechanisms,
        "nrh": args.nrh,
        "num_mixes": args.num_mixes,
        "accesses": args.accesses,
        "seed": args.seed,
    }


def _print_event(event: Dict[str, object]) -> None:
    kind = event.get("event", "?")
    parts = [f"[{event.get('seq', '?')}] {kind}"]
    if kind == "state":
        parts.append(str(event.get("state")))
    elif kind == "plan":
        parts.append(
            f"{event.get('total_jobs')} jobs, {event.get('cached_jobs')} cached, "
            f"mode={event.get('mode')}"
        )
    elif kind == "job":
        parts.append(
            f"{event.get('label')} ({event.get('done_jobs')}/{event.get('missing_jobs')})"
        )
    elif kind == "shard":
        parts.append(
            f"shard {event.get('shard')}: {event.get('jobs')} job(s) in "
            f"{event.get('seconds', 0.0):.2f}s "
            f"({event.get('done_jobs')}/{event.get('missing_jobs')})"
        )
    elif kind == "report":
        report = event.get("report", {})
        if isinstance(report, dict):
            parts.append(
                f"engine={report.get('engine')} "
                f"hit_rate={report.get('cache_hit_rate', 0.0):.2f} "
                f"wall={report.get('wall_seconds', 0.0):.2f}s"
            )
    print("  ".join(parts), flush=True)


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactKeyError
    from repro.service.client import ServiceClient, ServiceError

    try:
        host, port = _parse_server(args.server)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        auth_key = _load_key_arg(args.auth_key)
    except ArtifactKeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    client = ServiceClient(
        host=host, port=port, client_id=args.client_id, auth_key=auth_key
    )
    try:
        if args.client_command == "submit":
            try:
                spec = _client_spec(args)
            except (ValueError, OSError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            response = client.submit(spec, kind=args.kind, priority=args.priority)
            print(json.dumps(response, indent=2, sort_keys=True))
            if not args.watch:
                return 0
            job_id = str(response["job"])
            final_state = ""
            for event in client.watch(job_id, timeout=args.timeout):
                _print_event(event)
                if event.get("event") == "state":
                    final_state = str(event.get("state"))
            return 0 if final_state == "done" else 1
        if args.client_command == "watch":
            final_state = ""
            for event in client.watch(args.job_id, timeout=args.timeout):
                _print_event(event)
                if event.get("event") == "state":
                    final_state = str(event.get("state"))
            return 0 if final_state == "done" else 1
        if args.client_command == "status":
            print(json.dumps(client.status(args.job_id, full=args.full),
                             indent=2, sort_keys=True))
            return 0
        if args.client_command == "cancel":
            print(json.dumps(client.cancel(args.job_id), indent=2, sort_keys=True))
            return 0
        if args.client_command == "artifact":
            from repro.artifacts import ArtifactError, ArtifactReader

            blob = client.artifact(args.job_id)
            try:
                reader = ArtifactReader(blob, key=auth_key)
            except ArtifactError as error:
                print(
                    f"error: served artifact failed verification: "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr,
                )
                return 1
            with open(args.out, "wb") as handle:
                handle.write(blob)
            summary = reader.verify_summary()
            print(
                f"artifact for job {args.job_id} written to {args.out}: "
                f"{summary['records']} record(s), "
                f"{'signed' if summary['signed'] else 'unsigned'}"
                f"{' + signature verified' if summary['signature_verified'] else ''}"
            )
            return 0
        if args.client_command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.client_command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.client_command == "shutdown":
            print(json.dumps(client.shutdown(), indent=2, sort_keys=True))
            return 0
    except ServiceError as error:
        detail = f" (retry after {error.retry_after}s)" if error.retry_after else ""
        print(f"error: {error}{detail}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as error:
        print(f"error: cannot reach {args.server}: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled client command {args.client_command!r}")


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.attack_command == "list":
        return _cmd_attack_list()
    if args.attack_command == "trace":
        return _cmd_attack_trace(args)
    if args.attack_command == "search":
        return _cmd_attack_search(args)
    if args.attack_command == "compare":
        return _cmd_attack_compare(args)
    raise AssertionError(f"unhandled attack command {args.attack_command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Piping into ``head``/``jq`` closes stdout early (common with
        # ``artifact show``); swap in devnull so interpreter shutdown does
        # not raise again while flushing, and exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "mechanisms":
        return _cmd_mechanisms()
    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "artifact":
        return _cmd_artifact(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    raise AssertionError(f"unhandled command {args.command!r}")
