"""Command-line interface: ``python -m repro``.

Subcommands:

``sweep``
    Expand a declarative (mechanism x N_RH x mix) sweep into jobs and run it
    through the :class:`~repro.experiments.sweep.SweepEngine`, printing the
    aggregated mechanism comparison.  ``--dry-run`` lists the expanded jobs
    (and whether each is already cached) without simulating anything;
    ``--workers N`` executes missing jobs across N worker processes.

``cache``
    Inspect (``cache info``) or wipe (``cache clear``) the on-disk result
    cache.

``mechanisms``
    List every mechanism name accepted by ``--mechanisms``.

The on-disk cache location defaults to ``$REPRO_CACHE_DIR`` or
``.repro-cache``; pass ``--no-cache`` for a purely in-memory run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.factory import MECHANISM_NAMES
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.figures import format_rows
from repro.experiments.runner import ExperimentRunner, default_mixes
from repro.experiments.sweep import SweepEngine, default_workers
from repro.workloads.mixes import MIX_TYPES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Chronus (HPCA 2025) reproduction: sweep engine CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep", help="run a (mechanism x N_RH x mix) performance sweep"
    )
    sweep.add_argument(
        "--mechanisms", nargs="+", default=["Chronus", "PRAC-4"],
        metavar="NAME", help=f"mechanisms to sweep (from: {', '.join(MECHANISM_NAMES)})",
    )
    sweep.add_argument(
        "--nrh", nargs="+", type=int, default=[1024, 128],
        metavar="N", help="RowHammer thresholds to sweep",
    )
    sweep.add_argument(
        "--num-mixes", type=int, default=2, metavar="N",
        help="number of four-core workload mixes (paper: 60)",
    )
    sweep.add_argument(
        "--mix-types", nargs="+", default=None, choices=list(MIX_TYPES),
        help="restrict mixes to these intensity types",
    )
    sweep.add_argument(
        "--accesses", type=int, default=1000, metavar="N",
        help="memory accesses per core (paper: 100M instructions)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_SWEEP_WORKERS or serial)",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="keep results in memory only (no on-disk cache)",
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="list the expanded jobs and their cache status, then exit",
    )

    cache = subparsers.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache (default: $REPRO_CACHE_DIR or .repro-cache)",
    )

    subparsers.add_parser("mechanisms", help="list the available mechanism names")
    return parser


def _resolve_cache(args: argparse.Namespace) -> ResultCache:
    if getattr(args, "no_cache", False):
        return ResultCache(directory=None)
    directory = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    return ResultCache(directory=directory)


def _cmd_sweep(args: argparse.Namespace) -> int:
    mixes = [
        mix.applications
        for mix in default_mixes(args.num_mixes, mix_types=args.mix_types)
    ]
    if not mixes:
        print("error: no mixes selected", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    workers = default_workers() if args.workers is None else args.workers
    engine = SweepEngine(cache=cache, workers=workers)
    runner = ExperimentRunner(
        accesses_per_core=args.accesses, seed=args.seed, engine=engine
    )
    try:
        spec = runner.sweep_spec(args.mechanisms, args.nrh, mixes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    jobs = spec.expand()

    if args.dry_run:
        rows = [
            {
                "job": index,
                "workload": job.workload_name,
                "mechanism": job.config.mechanism,
                "nrh": job.config.nrh,
                "cores": job.config.num_cores,
                "accesses": job.accesses_per_core,
                "cached": "yes" if cache.contains(job.key) else "no",
                "key": job.key[:12],
            }
            for index, job in enumerate(jobs)
        ]
        print(format_rows(rows))
        cached = sum(1 for row in rows if row["cached"] == "yes")
        print(
            f"\ndry run: {len(jobs)} jobs ({spec.num_points()} sweep points, "
            f"{cached} cached, {len(jobs) - cached} to simulate, "
            f"workers={workers}, cache={cache.directory or 'memory-only'})"
        )
        return 0

    comparisons = runner.compare(args.mechanisms, args.nrh, mixes)
    rows = [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
            "normalized_energy": c.mean_normalized_energy,
            "is_secure": c.is_secure,
        }
        for c in comparisons
    ]
    print(format_rows(rows))
    print(f"\n{engine.executed_jobs} jobs simulated; {cache.summary()}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _resolve_cache(args)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    print(f"cache directory: {cache.directory}")
    print(f"entries: {cache.disk_entry_count()}")
    return 0


def _cmd_mechanisms() -> int:
    for name in MECHANISM_NAMES:
        print(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "mechanisms":
        return _cmd_mechanisms()
    raise AssertionError(f"unhandled command {args.command!r}")
