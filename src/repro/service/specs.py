"""Strict validation of client submissions into executable job lists.

Untrusted JSON crosses the trust boundary here, so parsing follows three
rules (the lessons of injection-style cache poisoning):

1. **Whitelist, never reflect**: every accepted field is read by name and
   passed as an explicit keyword argument to the dataclass constructors --
   there is no ``setattr`` loop over client keys, so a payload cannot smuggle
   attributes into :class:`~repro.experiments.sweep.SimJob` or the config.
2. **Reject unknown keys** (400), instead of silently ignoring them: a
   typoed field would otherwise change what the client *thinks* it ran.
3. **Bound everything**: access budgets, expanded job counts and list
   lengths are capped so one submission cannot wedge the service.

The output of :func:`parse_submission` is a :class:`Submission` whose
``payload`` is the *canonical* resolved description (defaults applied) --
what the service echoes back, so clients can verify what was admitted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.attacks.patterns import AttackSpec, pattern_names
from repro.core.factory import MECHANISM_NAMES
from repro.experiments.runner import default_mixes
from repro.experiments.sweep import SimJob, SweepSpec, attack_search_job
from repro.system.config import paper_system_config
from repro.workloads.mixes import MIX_TYPES

#: Job kinds the service schedules.
KIND_SWEEP = "sweep"
KIND_ATTACK_SEARCH = "attack_search"
KINDS = (KIND_SWEEP, KIND_ATTACK_SEARCH)

#: Per-submission resource bounds (one submission must not wedge the
#: service; clients split bigger work across submissions).
MAX_ACCESSES = 200_000
MAX_JOBS = 512
MAX_LIST_LENGTH = 64
MAX_PRIORITY = 9

#: Client identifiers: short, printable, no separators that could leak into
#: paths or headers.
_CLIENT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class SpecError(ValueError):
    """A rejected submission payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class Submission:
    """A validated, executable submission."""

    kind: str
    client: str
    priority: int
    payload: Dict[str, object]
    jobs: Tuple[SimJob, ...]


# --------------------------------------------------------------------------- #
# Primitive field readers
# --------------------------------------------------------------------------- #

def _require_mapping(value: object, what: str) -> Mapping[str, object]:
    if not isinstance(value, Mapping):
        raise SpecError(f"{what} must be a JSON object, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str):
            raise SpecError(f"{what} keys must be strings")
    return value


def _reject_unknown(mapping: Mapping[str, object], allowed: Sequence[str], what: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown {what} field(s) {unknown}; accepted: {sorted(allowed)}"
        )


def _read_int(
    mapping: Mapping[str, object],
    name: str,
    default: Optional[int],
    minimum: int,
    maximum: int,
) -> int:
    value = mapping.get(name, default)
    if value is None:
        raise SpecError(f"missing required field {name!r}")
    # bool is an int subclass; reject it explicitly (JSON true/false must
    # not be readable as 1/0 budgets).
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecError(f"{name} must be an integer, got {type(value).__name__}")
    if not minimum <= value <= maximum:
        raise SpecError(f"{name} must be in [{minimum}, {maximum}], got {value}")
    return value


def _read_bool(mapping: Mapping[str, object], name: str, default: bool) -> bool:
    value = mapping.get(name, default)
    if not isinstance(value, bool):
        raise SpecError(f"{name} must be a boolean, got {type(value).__name__}")
    return value


def _read_str_list(
    mapping: Mapping[str, object],
    name: str,
    allowed: Optional[Sequence[str]] = None,
    default: Optional[Sequence[str]] = None,
) -> List[str]:
    value = mapping.get(name, list(default) if default is not None else None)
    if value is None:
        raise SpecError(f"missing required field {name!r}")
    if not isinstance(value, list) or not value:
        raise SpecError(f"{name} must be a non-empty list")
    if len(value) > MAX_LIST_LENGTH:
        raise SpecError(f"{name} holds {len(value)} entries (max {MAX_LIST_LENGTH})")
    for item in value:
        if not isinstance(item, str):
            raise SpecError(f"{name} entries must be strings")
        if allowed is not None and item not in allowed:
            raise SpecError(
                f"{name} entry {item!r} is not one of {sorted(allowed)}"
            )
    return list(value)


def _read_int_list(mapping: Mapping[str, object], name: str, minimum: int, maximum: int) -> List[int]:
    value = mapping.get(name)
    if value is None:
        raise SpecError(f"missing required field {name!r}")
    if not isinstance(value, list) or not value:
        raise SpecError(f"{name} must be a non-empty list")
    if len(value) > MAX_LIST_LENGTH:
        raise SpecError(f"{name} holds {len(value)} entries (max {MAX_LIST_LENGTH})")
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool):
            raise SpecError(f"{name} entries must be integers")
        if not minimum <= item <= maximum:
            raise SpecError(f"{name} entry {item} must be in [{minimum}, {maximum}]")
    return list(value)


def validate_client(client: object) -> str:
    """A safe client identifier (used in queue bookkeeping and stats)."""
    if not isinstance(client, str) or not _CLIENT_RE.match(client):
        raise SpecError(
            "client must match [A-Za-z0-9._-]{1,64}"
        )
    return client


# --------------------------------------------------------------------------- #
# Kind-specific spec parsing
# --------------------------------------------------------------------------- #

_SWEEP_FIELDS = (
    "mechanisms", "nrh", "mixes", "num_mixes", "mix_types", "accesses",
    "seed", "channels", "include_alone", "include_baselines",
)


def _parse_sweep(spec: Mapping[str, object]) -> Tuple[Dict[str, object], Tuple[SimJob, ...]]:
    _reject_unknown(spec, _SWEEP_FIELDS, "sweep spec")
    mechanisms = _read_str_list(spec, "mechanisms", allowed=MECHANISM_NAMES)
    nrh_values = _read_int_list(spec, "nrh", minimum=1, maximum=1 << 20)
    accesses = _read_int(spec, "accesses", 1000, 1, MAX_ACCESSES)
    seed = _read_int(spec, "seed", 0, 0, 1 << 31)
    channels = _read_int(spec, "channels", 1, 1, 8)
    include_alone = _read_bool(spec, "include_alone", True)
    include_baselines = _read_bool(spec, "include_baselines", True)

    if "mixes" in spec and "num_mixes" in spec:
        raise SpecError("give either mixes or num_mixes, not both")
    if "mixes" in spec:
        raw_mixes = spec["mixes"]
        if not isinstance(raw_mixes, list) or not raw_mixes:
            raise SpecError("mixes must be a non-empty list of application lists")
        if len(raw_mixes) > MAX_LIST_LENGTH:
            raise SpecError(f"mixes holds {len(raw_mixes)} entries (max {MAX_LIST_LENGTH})")
        mixes: List[Tuple[str, ...]] = []
        for index, mix in enumerate(raw_mixes):
            if not isinstance(mix, list) or not mix:
                raise SpecError(f"mixes[{index}] must be a non-empty list of strings")
            if not all(isinstance(app, str) for app in mix):
                raise SpecError(f"mixes[{index}] entries must be strings")
            mixes.append(tuple(mix))
    else:
        num_mixes = _read_int(spec, "num_mixes", 1, 1, MAX_LIST_LENGTH)
        mix_types = (
            _read_str_list(spec, "mix_types", allowed=tuple(MIX_TYPES))
            if "mix_types" in spec else None
        )
        mixes = [
            tuple(mix.applications)
            for mix in default_mixes(num_mixes, mix_types=mix_types)
        ]
        if not mixes:
            raise SpecError("no mixes match the requested mix_types")

    try:
        base_config = paper_system_config().with_overrides(channels=channels)
        sweep = SweepSpec(
            mechanisms=tuple(mechanisms),
            nrh_values=tuple(nrh_values),
            mixes=tuple(mixes),
            accesses_per_core=accesses,
            seed=seed,
            base_config=base_config,
            include_alone=include_alone,
            include_baselines=include_baselines,
        )
        jobs = tuple(sweep.expand())
    except ValueError as error:
        raise SpecError(str(error))
    canonical: Dict[str, object] = {
        "mechanisms": mechanisms,
        "nrh": nrh_values,
        "mixes": [list(mix) for mix in mixes],
        "accesses": accesses,
        "seed": seed,
        "channels": channels,
        "include_alone": include_alone,
        "include_baselines": include_baselines,
    }
    return canonical, jobs


_ATTACK_FIELDS = (
    "mechanism", "nrh", "pattern", "params", "seed", "channel", "channels",
)


def _parse_attack_search(spec: Mapping[str, object]) -> Tuple[Dict[str, object], Tuple[SimJob, ...]]:
    _reject_unknown(spec, _ATTACK_FIELDS, "attack_search spec")
    mechanism = spec.get("mechanism")
    if mechanism not in MECHANISM_NAMES:
        raise SpecError(
            f"mechanism must be one of {sorted(MECHANISM_NAMES)}, got {mechanism!r}"
        )
    nrh_values = _read_int_list(spec, "nrh", minimum=1, maximum=1 << 20)
    pattern = spec.get("pattern")
    if pattern not in tuple(pattern_names()):
        raise SpecError(
            f"pattern must be one of {sorted(pattern_names())}, got {pattern!r}"
        )
    seed = _read_int(spec, "seed", 0, 0, 1 << 31)
    channels = _read_int(spec, "channels", 1, 1, 8)
    channel = _read_int(spec, "channel", 0, 0, 7)
    if channel >= channels:
        raise SpecError(f"channel {channel} out of range [0, {channels})")
    params_raw = _require_mapping(spec.get("params", {}), "params")
    params: Dict[str, int] = {}
    for name, value in params_raw.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise SpecError(f"params[{name!r}] must be an integer")
        params[name] = value
    try:
        attack = AttackSpec.create(pattern, params, seed=seed, channel=channel)
        base_config = paper_system_config().with_overrides(channels=channels)
        jobs = tuple(
            attack_search_job(base_config, mechanism, nrh, attack)
            for nrh in sorted(set(nrh_values))
        )
    except ValueError as error:
        raise SpecError(str(error))
    canonical: Dict[str, object] = {
        "mechanism": mechanism,
        "nrh": sorted(set(nrh_values)),
        "pattern": pattern,
        "params": dict(sorted(params.items())),
        "seed": seed,
        "channel": channel,
        "channels": channels,
    }
    return canonical, jobs


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #

_TOP_FIELDS = ("kind", "client", "priority", "spec")


def parse_submission(body: object, default_client: str = "anonymous") -> Submission:
    """Validate one POST /jobs payload into a :class:`Submission`.

    Raises :class:`SpecError` (HTTP 400) on anything unexpected.
    """
    top = _require_mapping(body, "submission")
    _reject_unknown(top, _TOP_FIELDS, "submission")
    kind = top.get("kind", KIND_SWEEP)
    if kind not in KINDS:
        raise SpecError(f"kind must be one of {list(KINDS)}, got {kind!r}")
    client = validate_client(top.get("client", default_client))
    priority = _read_int(top, "priority", 0, 0, MAX_PRIORITY)
    spec = _require_mapping(top.get("spec", None), "spec") if "spec" in top else None
    if spec is None:
        raise SpecError("missing required field 'spec'")
    if kind == KIND_SWEEP:
        canonical, jobs = _parse_sweep(spec)
    else:
        canonical, jobs = _parse_attack_search(spec)
    if len(jobs) > MAX_JOBS:
        raise SpecError(
            f"submission expands to {len(jobs)} jobs (max {MAX_JOBS}); "
            "split it across submissions"
        )
    return Submission(
        kind=kind,
        client=client,
        priority=priority,
        payload={"kind": kind, "priority": priority, "spec": canonical},
        jobs=jobs,
    )
