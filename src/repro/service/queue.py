"""Admission control: a bounded priority/fairness queue with rate limits.

Pure synchronous data structures (no asyncio) manipulated only from the
server's event-loop thread, which keeps them trivially testable.  Three
independent gates protect the executor:

* **bounded depth** -- the queue holds at most ``max_depth`` jobs; an
  overflowing submission raises :class:`QueueFull` (HTTP 429 with a
  ``Retry-After`` derived from the observed job duration),
* **per-client concurrency cap** -- at most ``per_client_active`` jobs per
  client may be queued or running at once (:class:`ClientCapExceeded`),
* **token-bucket rate limit** -- each client gets ``burst`` submission
  tokens refilled at ``rate`` per second (:class:`RateLimited` carries the
  exact wait until the next token).

Scheduling is priority-first (0 is most urgent), then **round-robin across
clients** within a priority: after a client is served it moves to the back
of the rotation, so one chatty client cannot starve the rest no matter how
many jobs it has queued.  Within one client, jobs stay FIFO.
"""

from __future__ import annotations

import itertools
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.experiments.sweep import CancelToken, SimJob


class JobState:
    """The job lifecycle (plain strings: they go straight into JSON)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


def new_job_id() -> str:
    """A short, unguessable job identifier."""
    return uuid.uuid4().hex[:12]


@dataclass
class JobRecord:
    """One submitted job and everything the service knows about it."""

    id: str
    client: str
    kind: str
    payload: Dict[str, object]
    jobs: Tuple[SimJob, ...]
    priority: int = 0
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Append-only event log (replayed to late WebSocket subscribers).
    events: List[Dict[str, object]] = field(default_factory=list)
    #: Summarised results, set on the DONE transition.
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    cancel: CancelToken = field(default_factory=CancelToken)

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    def snapshot(self, full: bool = False) -> Dict[str, object]:
        """JSON summary for ``GET /jobs/{id}`` and submit responses."""
        data: Dict[str, object] = {
            "job": self.id,
            "client": self.client,
            "kind": self.kind,
            "priority": self.priority,
            "state": self.state,
            "num_jobs": len(self.jobs),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
            "payload": self.payload,
        }
        if self.error is not None:
            data["error"] = self.error
        if self.result is not None:
            data["result"] = self.result
        if full:
            data["event_log"] = list(self.events)
        return data


# --------------------------------------------------------------------------- #
# Admission errors (each maps to HTTP 429)
# --------------------------------------------------------------------------- #

class QueueFull(Exception):
    """The bounded queue is at capacity."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(f"queue is full ({depth} jobs waiting)")
        self.retry_after = retry_after


class ClientCapExceeded(Exception):
    """The client already has its maximum of jobs queued or running."""

    def __init__(self, client: str, cap: int, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} already has {cap} job(s) queued or running"
        )
        self.retry_after = retry_after


class RateLimited(Exception):
    """The client's token bucket is empty."""

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(f"client {client!r} is submitting too fast")
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def _refill(self, now: float) -> None:
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now

    def try_consume(self, now: Optional[float] = None) -> Optional[float]:
        """Take one token; returns ``None`` on success, else seconds to wait."""
        now = time.monotonic() if now is None else now
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class FairQueue:
    """Bounded, priority-then-round-robin fair queue of :class:`JobRecord`\\ s."""

    def __init__(
        self,
        max_depth: int = 32,
        per_client_active: int = 4,
        rate: float = 5.0,
        burst: int = 10,
    ) -> None:
        self.max_depth = max_depth
        self.per_client_active = per_client_active
        self.rate = rate
        self.burst = burst
        #: Per-client FIFO of queued records.
        self._queues: Dict[str, Deque[JobRecord]] = {}
        #: Round-robin rotation: client -> monotonically increasing serve
        #: stamp; the *lowest* stamp among candidates is served next.
        self._rotation: Dict[str, int] = {}
        self._rotation_counter = itertools.count()
        #: Jobs currently executing, per client.
        self._running: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        #: Exponential moving average of job wall seconds (Retry-After hint).
        self.avg_job_seconds = 2.0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def active_jobs(self, client: str) -> int:
        return len(self._queues.get(client, ())) + self._running.get(client, 0)

    def snapshot(self) -> Dict[str, object]:
        """Queue statistics for ``GET /stats``."""
        return {
            "depth": self.depth,
            "max_depth": self.max_depth,
            "per_client_active": self.per_client_active,
            "running": dict(self._running),
            "queued_by_client": {
                client: len(queue)
                for client, queue in self._queues.items() if queue
            },
            "avg_job_seconds": self.avg_job_seconds,
        }

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(self, record: JobRecord) -> int:
        """Admit a record; returns its queue position (0 = next up).

        Raises :class:`RateLimited`, :class:`ClientCapExceeded` or
        :class:`QueueFull` -- checked in that order, so a throttled client
        learns about the throttle even when the queue is also full.
        """
        bucket = self._buckets.get(record.client)
        if bucket is None:
            bucket = self._buckets[record.client] = TokenBucket(self.rate, self.burst)
        wait = bucket.try_consume()
        if wait is not None:
            raise RateLimited(record.client, retry_after=wait)
        if self.active_jobs(record.client) >= self.per_client_active:
            raise ClientCapExceeded(
                record.client, self.per_client_active,
                retry_after=self.avg_job_seconds,
            )
        if self.depth >= self.max_depth:
            raise QueueFull(self.depth, retry_after=self.avg_job_seconds)
        queue = self._queues.setdefault(record.client, deque())
        if record.client not in self._rotation:
            self._rotation[record.client] = next(self._rotation_counter)
        position = self.depth  # before appending: 0-indexed position
        queue.append(record)
        return position

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def next_job(self) -> Optional[JobRecord]:
        """Pop the next record to execute (or ``None`` when idle).

        Candidates are each client's FIFO head; the winner is the head with
        the lowest ``(priority, rotation stamp)``.  Serving a client sends
        it to the back of the rotation.
        """
        best: Optional[Tuple[int, int, str]] = None
        for client, queue in self._queues.items():
            if not queue:
                continue
            candidate = (queue[0].priority, self._rotation[client], client)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return None
        client = best[2]
        record = self._queues[client].popleft()
        self._rotation[client] = next(self._rotation_counter)
        self._running[client] = self._running.get(client, 0) + 1
        return record

    def release(self, record: JobRecord, seconds: Optional[float] = None) -> None:
        """Mark a running record finished (updates caps and the EWMA)."""
        count = self._running.get(record.client, 0)
        if count <= 1:
            self._running.pop(record.client, None)
        else:
            self._running[record.client] = count - 1
        if seconds is not None:
            self.avg_job_seconds = 0.7 * self.avg_job_seconds + 0.3 * seconds

    def remove(self, job_id: str) -> Optional[JobRecord]:
        """Remove a still-queued record by id (cancellation)."""
        for client, queue in self._queues.items():
            for record in queue:
                if record.id == job_id:
                    queue.remove(record)
                    return record
        return None
