"""Blocking stdlib client for the simulation service.

``http.client`` drives the REST side, a raw socket plus the shared sans-I/O
frame codec (:mod:`repro.service.protocol`) drives the WebSocket side --
the client therefore works in any environment the repo's tier-1 tests run
in (no ``requests``, no ``websockets`` dependency).

The CLI (``python -m repro client ...``), the load benchmark and the
service tests are all built on :class:`ServiceClient`.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Callable, Dict, Iterator, Optional

from repro.service import protocol


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(
        self,
        status: int,
        message: str,
        reason: str = "",
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.reason = reason
        self.retry_after = retry_after


class ServiceClient:
    """Talks to one service instance; one connection per call."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8123,
        client_id: str = "anonymous",
        timeout: float = 30.0,
        auth_key: Optional[bytes] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.auth_key = auth_key
        if auth_key is not None:
            from repro.artifacts.integrity import auth_token

            self._auth_token: Optional[str] = auth_token(auth_key, client_id)
        else:
            self._auth_token = None

    def _base_headers(self) -> Dict[str, str]:
        headers = {"X-Client": self.client_id}
        if self._auth_token is not None:
            headers["X-Auth-Token"] = self._auth_token
        return headers

    # ------------------------------------------------------------------ #
    # REST
    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Dict[str, object]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = self._base_headers()
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status,
                    str(decoded.get("error", "request failed")),
                    reason=str(decoded.get("reason", "")),
                    retry_after=int(retry_after) if retry_after else None,
                )
            return decoded
        finally:
            connection.close()

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def submit(
        self,
        spec: Dict[str, object],
        kind: str = "sweep",
        priority: int = 0,
    ) -> Dict[str, object]:
        """Submit a job; returns the 202 body (``job``, ``cached_jobs``...)."""
        return self._request(
            "POST",
            "/jobs",
            body={
                "kind": kind,
                "client": self.client_id,
                "priority": priority,
                "spec": spec,
            },
        )

    def status(self, job_id: str, full: bool = False) -> Dict[str, object]:
        suffix = "?full=1" if full else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def artifact(self, job_id: str) -> bytes:
        """Download a finished job's result artifact (raw bytes).

        Verify with :class:`repro.artifacts.ArtifactReader` -- pass the
        shared auth key to also check the signature.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/jobs/{job_id}/artifact", headers=self._base_headers()
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except ValueError:
                    decoded = {"error": raw.decode("utf-8", "replace")}
                raise ServiceError(
                    response.status,
                    str(decoded.get("error", "request failed")),
                    reason=str(decoded.get("reason", "")),
                )
            return raw
        finally:
            connection.close()

    def shutdown(self) -> Dict[str, object]:
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------ #
    # WebSocket watch
    # ------------------------------------------------------------------ #
    def watch(
        self,
        job_id: str,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, object]]:
        """Stream a job's events until its terminal state.

        Yields each event dict (history first, then live).  ``timeout``
        bounds the whole watch; the per-read timeout is the client default.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            key = protocol.websocket_client_key()
            auth_line = (
                f"X-Auth-Token: {self._auth_token}\r\n"
                if self._auth_token is not None else ""
            )
            handshake = (
                f"GET /ws/jobs/{job_id} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                f"X-Client: {self.client_id}\r\n"
                f"{auth_line}"
                "\r\n"
            )
            sock.sendall(handshake.encode("latin-1"))
            buffer = bytearray()
            head = self._read_handshake(sock, buffer)
            status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in f" {status_line} ":
                body, error = self._read_error_body(sock, head, buffer)
                raise ServiceError(
                    self._handshake_status(status_line), error or status_line
                )
            headers = {}
            for line in head.split(b"\r\n")[1:]:
                name, separator, value = line.decode("latin-1").partition(":")
                if separator:
                    headers[name.strip().lower()] = value.strip()
            if headers.get("sec-websocket-accept") != protocol.websocket_accept_key(key):
                raise ServiceError(502, "bad Sec-WebSocket-Accept from server")
            while True:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"watch of job {job_id} timed out")
                opcode, payload = self._read_frame(sock, buffer)
                if opcode == protocol.OP_CLOSE:
                    return
                if opcode == protocol.OP_PING:
                    sock.sendall(
                        protocol.encode_frame(payload, protocol.OP_PONG, mask=True)
                    )
                    continue
                if opcode != protocol.OP_TEXT:
                    continue
                event = json.loads(payload.decode("utf-8"))
                if on_event is not None:
                    on_event(event)
                yield event
        finally:
            try:
                sock.sendall(protocol.encode_close(1000, mask=True))
            except OSError:
                pass
            sock.close()

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Watch until terminal and return the final state event."""
        final: Dict[str, object] = {}
        for event in self.watch(job_id, timeout=timeout):
            if event.get("event") == "state" and event.get("state") in (
                "done", "failed", "cancelled"
            ):
                final = event
        if not final:
            # The stream closed without a terminal event (e.g. server stop);
            # fall back to the REST snapshot.
            final = self.status(job_id)
        return final

    # ------------------------------------------------------------------ #
    # Socket helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _handshake_status(status_line: str) -> int:
        parts = status_line.split()
        try:
            return int(parts[1])
        except (IndexError, ValueError):
            return 502

    @staticmethod
    def _read_handshake(sock: socket.socket, buffer: bytearray) -> bytes:
        """Read up to the end of the response headers; rest stays buffered."""
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed during WebSocket handshake")
            buffer += chunk
        head, _, rest = bytes(buffer).partition(b"\r\n\r\n")
        del buffer[:]
        buffer += rest
        return head

    @staticmethod
    def _read_error_body(
        sock: socket.socket, head: bytes, buffer: bytearray
    ) -> tuple:
        """Best-effort read of a JSON error body after a failed handshake."""
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                try:
                    length = int(line.split(b":", 1)[1].strip())
                except ValueError:
                    length = 0
        while len(buffer) < length:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
        body = bytes(buffer[:length])
        try:
            return body, json.loads(body.decode("utf-8")).get("error", "")
        except ValueError:
            return body, ""

    @staticmethod
    def _read_frame(sock: socket.socket, buffer: bytearray) -> tuple:
        while True:
            decoded = protocol.decode_frame(bytes(buffer))
            if decoded is not None:
                opcode, payload, consumed = decoded
                del buffer[:consumed]
                return opcode, payload
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-frame")
            buffer += chunk
