"""The asyncio job server: routes, subscriptions, and the executor.

One :class:`SimulationService` owns one shared
:class:`~repro.experiments.sweep.SweepEngine` (and therefore one persistent
worker pool, one batch engine, one sharded
:class:`~repro.experiments.cache.ResultCache`) and multiplexes it across
clients:

* ``POST /jobs`` validates the payload (:mod:`repro.service.specs`), admits
  it through the :class:`~repro.service.queue.FairQueue` (429 +
  ``Retry-After`` when full / capped / throttled) and answers 202 with the
  job id and how much of the submission is already cached.
* A single **executor task** drains the queue in priority/fairness order
  and runs each job on the engine in a worker thread.  The engine's
  progress callback is bridged onto the event loop with
  ``call_soon_threadsafe``, so every ``plan`` / ``job`` / ``shard`` /
  ``report`` event lands in the record's append-only event log **and** is
  pushed live to WebSocket subscribers.  Jobs run one at a time -- the
  engine parallelises *inside* a job (pool shards / batch groups), which
  also guarantees that overlapping submissions are computed once: the
  second job finds the first one's results in the shared cache.
* ``GET /ws/jobs/{id}`` upgrades to WebSocket: the
  :class:`ConnectionManager` replays the job's event history, then streams
  live events until a terminal state.  A client that disconnects mid-stream
  is unsubscribed; the job keeps running.
* ``POST /jobs/{id}/cancel`` removes a queued job immediately, or fires the
  running job's :class:`~repro.experiments.sweep.CancelToken` --
  cancellation is cooperative, and everything computed before the
  cancellation point stays cached.
* ``GET /jobs/{id}/artifact`` serves a finished job's results as a
  self-describing result artifact (:mod:`repro.artifacts`) -- signed when
  the service holds an ``auth_key``.
* With an ``auth_key``, every route except ``/healthz`` demands
  ``X-Auth-Token = HMAC(key, X-Client)`` (constant-time compare, 401
  otherwise) -- replacing the honor-system ``X-Client`` header as the
  client identity.

Event-log consistency relies on every mutation happening on the event-loop
thread; the executor's worker thread only ever talks to the loop through
``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional, Set

from repro.experiments.cache import ResultCache
from repro.experiments.sweep import (
    SweepCancelled,
    SweepEngine,
    SimJob,
    default_workers,
)
from repro.service import protocol
from repro.service.queue import (
    ClientCapExceeded,
    FairQueue,
    JobRecord,
    JobState,
    QueueFull,
    RateLimited,
    new_job_id,
)
from repro.service.specs import SpecError, parse_submission
from repro.system.metrics import SimulationResult

#: Protocol version advertised by /healthz (bump on breaking changes).
PROTOCOL_VERSION = 1


def result_summary(job: SimJob, result: SimulationResult) -> Dict[str, object]:
    """The compact per-job result shipped in ``done`` events.

    Full :class:`SimulationResult` payloads are available via
    ``GET /jobs/{id}?full=1``; the streamed summary keeps WebSocket events
    small.
    """
    ipcs = list(result.core_ipcs)
    return {
        "key": job.key,
        "workload": result.workload,
        "mechanism": result.mechanism,
        "nrh": result.nrh,
        "cycles": result.cycles,
        "is_secure": result.is_secure,
        "energy_nj": result.energy_nj,
        "mean_ipc": sum(ipcs) / len(ipcs) if ipcs else 0.0,
    }


class ConnectionManager:
    """Tracks live WebSocket subscriptions per job.

    Subscription state is only mutated from the event-loop thread.  The
    manager does not push frames itself -- each subscriber's handler task
    drains the job's event log at its own pace (a slow client can therefore
    never stall the executor or other subscribers) -- but it is the single
    source of truth for who is subscribed, which the disconnect tests and
    ``/stats`` rely on.
    """

    def __init__(self) -> None:
        self._subscribers: Dict[str, Set[int]] = {}
        self._next_token = 0

    def subscribe(self, job_id: str) -> int:
        token = self._next_token
        self._next_token += 1
        self._subscribers.setdefault(job_id, set()).add(token)
        return token

    def unsubscribe(self, job_id: str, token: int) -> None:
        subscribers = self._subscribers.get(job_id)
        if subscribers is None:
            return
        subscribers.discard(token)
        if not subscribers:
            del self._subscribers[job_id]

    def subscriber_count(self, job_id: str) -> int:
        return len(self._subscribers.get(job_id, ()))

    def snapshot(self) -> Dict[str, int]:
        return {job: len(tokens) for job, tokens in self._subscribers.items()}


class SimulationService:
    """The job server application object (framework-free).

    ``engine`` may be injected (tests stub it; an optional FastAPI adapter
    could wrap this same object); :meth:`build` constructs the standard
    production wiring from CLI-style options.
    """

    def __init__(
        self,
        engine: SweepEngine,
        queue: Optional[FairQueue] = None,
        default_client: str = "anonymous",
        auth_key: Optional[bytes] = None,
    ) -> None:
        self.engine = engine
        self.queue = queue if queue is not None else FairQueue()
        self.manager = ConnectionManager()
        self.default_client = default_client
        #: When set, every route except ``/healthz`` requires
        #: ``X-Auth-Token = HMAC(auth_key, X-Client)`` (constant-time
        #: compare; 401 otherwise), and served artifacts are signed with
        #: the same key.  ``None`` keeps the open, honor-system behaviour.
        self.auth_key = auth_key
        self.jobs: Dict[str, JobRecord] = {}
        self.started_at = time.time()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor_task: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        #: Event-sequence pulse per job: replaced (and the old one set) on
        #: every publish, so any number of waiters wake without races.
        self._pulses: Dict[str, asyncio.Event] = {}
        # One worker thread: jobs execute strictly one at a time on the
        # shared engine (the engine parallelises internally).
        from concurrent.futures import ThreadPoolExecutor

        self._work_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-exec"
        )

    @classmethod
    def build(
        cls,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        batch: bool = False,
        max_queue_depth: int = 32,
        per_client_active: int = 4,
        rate: float = 10.0,
        burst: int = 20,
        auth_key: Optional[bytes] = None,
    ) -> "SimulationService":
        """Standard wiring: one engine over an on-disk (or memory) cache."""
        engine = SweepEngine(
            cache=ResultCache(cache_dir),
            workers=default_workers() if workers is None else workers,
            batch=batch,
        )
        queue = FairQueue(
            max_depth=max_queue_depth,
            per_client_active=per_client_active,
            rate=rate,
            burst=burst,
        )
        return cls(engine=engine, queue=queue, auth_key=auth_key)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving (returns once listening)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._executor_task = asyncio.ensure_future(self._executor_loop())

    async def stop(self) -> None:
        """Stop serving: cancel running work, close the engine and pool."""
        self._stopping.set()
        for record in self.jobs.values():
            if not record.finished:
                record.cancel.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor_task is not None:
            self._wake.set()
            try:
                await asyncio.wait_for(self._executor_task, timeout=30)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._executor_task.cancel()
            self._executor_task = None
        self._work_pool.shutdown(wait=False)
        self.engine.close()

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a shutdown request) fires."""
        await self._stopping.wait()

    # ------------------------------------------------------------------ #
    # Event publishing (loop thread only)
    # ------------------------------------------------------------------ #
    def _publish(self, record: JobRecord, event: Dict[str, object]) -> None:
        event = dict(event)
        event["job"] = record.id
        event["seq"] = len(record.events)
        event["ts"] = time.time()
        record.events.append(event)
        pulse = self._pulses.get(record.id)
        if pulse is not None:
            pulse.set()
        self._pulses[record.id] = asyncio.Event()

    def _publish_threadsafe(self, record: JobRecord, event: Dict[str, object]) -> None:
        """Engine progress callback: runs on the worker thread."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._publish, record, event)

    def _set_state(
        self, record: JobRecord, state: str, **extra: object
    ) -> None:
        record.state = state
        if state == JobState.RUNNING:
            record.started_at = time.time()
        if state in JobState.TERMINAL:
            record.finished_at = time.time()
        event: Dict[str, object] = {"event": "state", "state": state}
        event.update(extra)
        self._publish(record, event)

    # ------------------------------------------------------------------ #
    # Executor
    # ------------------------------------------------------------------ #
    async def _executor_loop(self) -> None:
        assert self._loop is not None
        while not self._stopping.is_set():
            record = self.queue.next_job()
            if record is None:
                self._wake.clear()
                waiter = asyncio.ensure_future(self._wake.wait())
                stopper = asyncio.ensure_future(self._stopping.wait())
                await asyncio.wait(
                    {waiter, stopper}, return_when=asyncio.FIRST_COMPLETED
                )
                waiter.cancel()
                stopper.cancel()
                continue
            if record.finished:
                # Cancelled while queued but not yet removed: nothing to do.
                self.queue.release(record)
                continue
            self._set_state(record, JobState.RUNNING)
            started = time.perf_counter()
            try:
                outcome = await self._loop.run_in_executor(
                    self._work_pool, self._execute_record, record
                )
            except SweepCancelled as cancelled:
                self._set_state(
                    record, JobState.CANCELLED,
                    partial_report=cancelled.report.as_dict(),
                )
            except Exception as error:  # noqa: BLE001 -- job isolation:
                # one failing job must not take the service down.
                record.error = f"{type(error).__name__}: {error}"
                self._set_state(record, JobState.FAILED, error=record.error)
            else:
                record.result = outcome
                self._set_state(record, JobState.DONE, result=outcome)
            finally:
                self.queue.release(record, time.perf_counter() - started)

    def _execute_record(self, record: JobRecord) -> Dict[str, object]:
        """Worker-thread body: drive the engine for one job."""
        results = self.engine.run_jobs(
            record.jobs,
            progress=lambda event: self._publish_threadsafe(record, event),
            cancel=record.cancel,
        )
        report = self.engine.last_run_report
        return {
            "results": [
                result_summary(job, results[job.key]) for job in record.jobs
            ],
            "report": report.as_dict(),
            "cache": self.engine.cache.summary(),
        }

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await protocol.read_request(reader)
            except protocol.ProtocolError as error:
                status = 413 if "exceeds" in str(error) else 400
                writer.write(protocol.error_response(status, str(error)))
                await writer.drain()
                return
            if request is None:
                return
            denied = self._auth_error(request)
            if denied is not None:
                writer.write(denied)
                await writer.drain()
                return
            if request.path.startswith("/ws/"):
                await self._handle_websocket(request, reader, writer)
                return
            response = self._route_http(request)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _auth_error(self, request: protocol.HttpRequest) -> Optional[bytes]:
        """401 response when auth is on and the request fails it, else None.

        Applies to every route -- HTTP and WebSocket upgrades alike --
        except ``/healthz`` (liveness probes must work before keys are
        distributed).  The token binds the *client identity* the fairness
        queue accounts against: ``X-Auth-Token = HMAC(key, X-Client)``,
        compared in constant time, so an attacker can neither submit jobs
        nor impersonate another client's queue quota.
        """
        if self.auth_key is None:
            return None
        if request.path.rstrip("/") == "/healthz":
            return None
        from repro.artifacts.integrity import verify_auth_token

        client = request.header("x-client")
        token = request.header("x-auth-token")
        if verify_auth_token(self.auth_key, client, token):
            return None
        return protocol.error_response(
            401,
            "missing or invalid X-Auth-Token for this X-Client "
            "(token = HMAC-SHA256(key, client id), hex)",
            reason="unauthorized",
        )

    def _route_http(self, request: protocol.HttpRequest) -> bytes:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            if request.method != "GET":
                return protocol.error_response(405, "use GET")
            return protocol.json_response(200, self._health_payload())
        if path == "/stats":
            if request.method != "GET":
                return protocol.error_response(405, "use GET")
            return protocol.json_response(200, self._stats_payload())
        if path == "/jobs":
            if request.method != "POST":
                return protocol.error_response(405, "use POST")
            return self._handle_submit(request)
        if path == "/shutdown":
            if request.method != "POST":
                return protocol.error_response(405, "use POST")
            assert self._loop is not None
            self._loop.call_soon(self._stopping.set)
            return protocol.json_response(200, {"status": "stopping"})
        if path.startswith("/jobs/"):
            return self._route_job(request, path)
        return protocol.error_response(404, f"no route for {request.path!r}")

    def _route_job(self, request: protocol.HttpRequest, path: str) -> bytes:
        parts = path.split("/")  # ["", "jobs", id, maybe-action]
        job_id = parts[2] if len(parts) > 2 else ""
        record = self.jobs.get(job_id)
        if record is None:
            return protocol.error_response(404, f"unknown job {job_id!r}")
        if len(parts) == 3 and request.method == "GET":
            full = request.query.get("full") in ("1", "true", "yes")
            return protocol.json_response(200, record.snapshot(full=full))
        if len(parts) == 4 and parts[3] == "artifact" and request.method == "GET":
            return self._handle_artifact(record)
        wants_cancel = (
            (len(parts) == 4 and parts[3] == "cancel" and request.method == "POST")
            or (len(parts) == 3 and request.method == "DELETE")
        )
        if wants_cancel:
            return self._handle_cancel(record)
        return protocol.error_response(405, "use GET, DELETE or POST .../cancel")

    # ------------------------------------------------------------------ #
    # Route bodies
    # ------------------------------------------------------------------ #
    def _health_payload(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.queue.depth,
        }

    def _stats_payload(self) -> Dict[str, object]:
        by_state: Dict[str, int] = {}
        for record in self.jobs.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "uptime_seconds": time.time() - self.started_at,
            "jobs_by_state": by_state,
            "queue": self.queue.snapshot(),
            "subscribers": self.manager.snapshot(),
            "engine": {
                "workers": self.engine.workers,
                "batch": self.engine.batch,
                "executed_jobs": self.engine.executed_jobs,
                "cache": self.engine.cache.summary(),
            },
        }

    def _handle_submit(self, request: protocol.HttpRequest) -> bytes:
        try:
            body = request.json()
        except protocol.ProtocolError as error:
            return protocol.error_response(400, str(error), reason="bad_json")
        if self.auth_key is not None and isinstance(body, dict):
            # The authenticated identity wins: a body-level "client" field
            # must not let one key holder bill another client's quota.
            body = dict(body)
            body["client"] = request.header("x-client", self.default_client)
        try:
            submission = parse_submission(
                body,
                default_client=request.header("x-client", self.default_client),
            )
        except SpecError as error:
            return protocol.error_response(400, str(error), reason="bad_spec")
        record = JobRecord(
            id=new_job_id(),
            client=submission.client,
            kind=submission.kind,
            payload=submission.payload,
            jobs=submission.jobs,
            priority=submission.priority,
        )
        try:
            position = self.queue.submit(record)
        except RateLimited as error:
            return protocol.error_response(
                429, str(error), reason="rate_limited", retry_after=error.retry_after
            )
        except ClientCapExceeded as error:
            return protocol.error_response(
                429, str(error), reason="client_cap", retry_after=error.retry_after
            )
        except QueueFull as error:
            return protocol.error_response(
                429, str(error), reason="queue_full", retry_after=error.retry_after
            )
        self.jobs[record.id] = record
        cached = sum(1 for job in record.jobs if self.engine.cache.contains(job.key))
        self._publish(
            record,
            {"event": "state", "state": JobState.QUEUED, "position": position},
        )
        self._wake.set()
        return protocol.json_response(
            202,
            {
                "job": record.id,
                "state": record.state,
                "position": position,
                "num_jobs": len(record.jobs),
                "cached_jobs": cached,
                "watch": f"/ws/jobs/{record.id}",
            },
        )

    def _handle_artifact(self, record: JobRecord) -> bytes:
        """``GET /jobs/{id}/artifact``: the job's results as a verifiable
        (and, with ``--auth-key``, signed) artifact instead of bare JSON."""
        if record.state != JobState.DONE:
            return protocol.error_response(
                409,
                f"job {record.id} is {record.state}; artifacts are served "
                f"for done jobs only",
                reason="not_done",
            )
        from repro.artifacts.emit import service_job_records
        from repro.artifacts.writer import write_artifact_bytes

        meta, records = service_job_records(record, self.engine.cache)
        body = write_artifact_bytes(meta, records, key=self.auth_key)
        return protocol.http_response(
            200, body,
            content_type="application/x-repro-artifact",
            extra_headers={
                "X-Artifact-Signed": "1" if self.auth_key is not None else "0",
            },
        )

    def _handle_cancel(self, record: JobRecord) -> bytes:
        if record.finished:
            # Idempotent: cancelling a finished job reports its final state.
            return protocol.json_response(200, record.snapshot())
        if record.state == JobState.QUEUED and self.queue.remove(record.id) is not None:
            record.cancel.cancel()
            self._set_state(record, JobState.CANCELLED)
        else:
            # Running (or queued-but-racing): fire the token; the executor
            # publishes the terminal state when the engine acknowledges.
            record.cancel.cancel()
            self._publish(record, {"event": "cancel_requested"})
        return protocol.json_response(200, record.snapshot())

    # ------------------------------------------------------------------ #
    # WebSocket streaming
    # ------------------------------------------------------------------ #
    async def _handle_websocket(self, request, reader, writer) -> None:
        parts = request.path.rstrip("/").split("/")
        # Expected shape: /ws/jobs/{id}
        record = (
            self.jobs.get(parts[3])
            if len(parts) == 4 and parts[1] == "ws" and parts[2] == "jobs"
            else None
        )
        if record is None:
            writer.write(protocol.error_response(404, f"no stream at {request.path!r}"))
            await writer.drain()
            return
        if not request.wants_websocket:
            writer.write(protocol.error_response(
                426, "this endpoint speaks WebSocket", reason="upgrade_required"
            ))
            await writer.drain()
            return
        try:
            writer.write(protocol.websocket_handshake_response(request))
            await writer.drain()
        except protocol.ProtocolError as error:
            writer.write(protocol.error_response(400, str(error)))
            await writer.drain()
            return
        token = self.manager.subscribe(record.id)
        sender = asyncio.ensure_future(self._stream_events(record, writer))
        receiver = asyncio.ensure_future(self._drain_client(reader, writer))
        try:
            done, pending = await asyncio.wait(
                {sender, receiver}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass
        finally:
            self.manager.unsubscribe(record.id, token)

    async def _stream_events(self, record: JobRecord, writer) -> None:
        """Replay the record's event log, then follow it live."""
        sent = 0
        while True:
            pulse = self._pulses.get(record.id)
            while sent < len(record.events):
                writer.write(protocol.encode_text(record.events[sent]))
                sent += 1
            await writer.drain()
            if record.finished and sent >= len(record.events):
                writer.write(protocol.encode_close(1000))
                await writer.drain()
                return
            if pulse is None:
                pulse = self._pulses.setdefault(record.id, asyncio.Event())
            await pulse.wait()

    async def _drain_client(self, reader, writer) -> None:
        """Consume client frames: answer pings, stop on close/EOF."""
        buffer = bytearray()
        while True:
            try:
                opcode, payload = await protocol.read_frame(reader, buffer)
            except (ConnectionError, protocol.ProtocolError, OSError):
                return
            if opcode == protocol.OP_CLOSE:
                return
            if opcode == protocol.OP_PING:
                writer.write(protocol.encode_frame(payload, protocol.OP_PONG))
                await writer.drain()
            # Text/binary frames from watchers are ignored.


async def run_service(
    service: SimulationService, host: str = "127.0.0.1", port: int = 8123
) -> None:
    """Start ``service``, print readiness, and serve until shutdown."""
    await service.start(host=host, port=port)
    print(f"repro service listening on http://{host}:{service.port}", flush=True)
    try:
        await service.serve_forever()
    finally:
        await service.stop()
        print("repro service stopped", flush=True)
