"""Simulation-as-a-service: an async job server over the sweep engine.

The package turns the batch CLI into a long-running multi-tenant service:

* :mod:`repro.service.protocol` -- a minimal, dependency-free HTTP/1.1 and
  WebSocket (RFC 6455) layer over ``asyncio`` streams, with a sans-I/O
  frame codec shared by the server and the blocking client.
* :mod:`repro.service.specs` -- strict validation of client JSON payloads
  into :class:`~repro.experiments.sweep.SimJob` lists (whitelisted fields
  only; malformed payloads are rejected with a 4xx, never injected).
* :mod:`repro.service.queue` -- the admission layer: a bounded priority /
  fairness queue with per-client concurrency caps and token-bucket rate
  limits (full / capped / throttled submissions answer 429 + Retry-After).
* :mod:`repro.service.server` -- :class:`SimulationService`: routes,
  the per-job WebSocket :class:`ConnectionManager`, and the executor that
  drives the shared :class:`~repro.experiments.sweep.SweepEngine` with
  progress streaming and cooperative cancellation.
* :mod:`repro.service.client` -- a blocking stdlib client
  (``python -m repro client submit|watch|status|cancel``) used by the CLI,
  the load benchmark and the tests.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import (
    ClientCapExceeded,
    FairQueue,
    JobRecord,
    JobState,
    QueueFull,
    RateLimited,
    TokenBucket,
)
from repro.service.server import ConnectionManager, SimulationService
from repro.service.specs import SpecError, parse_submission

__all__ = [
    "ClientCapExceeded",
    "ConnectionManager",
    "FairQueue",
    "JobRecord",
    "JobState",
    "QueueFull",
    "RateLimited",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "SpecError",
    "TokenBucket",
    "parse_submission",
]
