"""Minimal HTTP/1.1 + WebSocket (RFC 6455) layer over asyncio streams.

The service deliberately has **no framework dependency**: tier-1 tests must
stay hermetic, and the container cannot install FastAPI/uvicorn.  What the
job server actually needs from HTTP is tiny -- parse a request line, a
handful of headers and a bounded JSON body; write a status line, headers
and a body -- and the WebSocket side needs the RFC 6455 opening handshake
plus the frame codec.

The frame codec is **sans-I/O** (pure ``bytes -> frame`` / ``frame ->
bytes`` functions), so the asyncio server and the blocking stdlib client
(:mod:`repro.service.client`) share one implementation, and the codec is
unit-testable without sockets.

Scope limits, by design (documented in ``docs/SERVICE.md``):

* one request per HTTP connection (``Connection: close``); only WebSocket
  upgrades keep the socket open,
* request bodies are capped (:data:`MAX_BODY_BYTES`) -- oversized payloads
  answer 413 before the body is read into memory,
* WebSocket messages must fit in one unfragmented frame (events are small
  JSON documents; fragmented frames answer close code 1003).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: RFC 6455 §1.3 magic GUID appended to the client key before hashing.
WEBSOCKET_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Upper bound on accepted HTTP request bodies (1 MiB).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on a single WebSocket frame payload accepted by either side.
MAX_FRAME_BYTES = 1 << 22

#: WebSocket opcodes (the subset the service speaks).
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Reason phrases for the status codes the service emits.
REASON_PHRASES = {
    101: "Switching Protocols",
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A malformed HTTP request or WebSocket frame."""


# --------------------------------------------------------------------------- #
# HTTP requests
# --------------------------------------------------------------------------- #

@dataclass
class HttpRequest:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> object:
        """Decode the body as JSON; :class:`ProtocolError` on failure."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")

    @property
    def wants_websocket(self) -> bool:
        """True when the request asks for a WebSocket upgrade."""
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )


async def read_request(reader, max_body: int = MAX_BODY_BYTES) -> Optional[HttpRequest]:
    """Read one HTTP request from an asyncio stream.

    Returns ``None`` on a clean EOF before any bytes (client closed an idle
    connection); raises :class:`ProtocolError` on anything malformed.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(f"malformed request line: {request_line!r}")
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version: {version}")
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise ProtocolError(f"request body of {length} bytes exceeds {max_body}")
    if length:
        body = await reader.readexactly(length)
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return HttpRequest(
        method=method.upper(), path=split.path, query=query,
        headers=headers, body=body,
    )


def http_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one HTTP response (always ``Connection: close``)."""
    reason = REASON_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: object,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """An HTTP response with a JSON body."""
    # reprolint: disable=canonical-json -- transient HTTP framing: the body
    # is length-prefixed by Content-Length, never persisted, hashed or
    # signed, and spec.py's helper would raise the artifact error domain
    # at callers expecting ServiceError semantics.
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return http_response(status, body, extra_headers=extra_headers)


def error_response(
    status: int,
    message: str,
    reason: str = "",
    retry_after: Optional[float] = None,
) -> bytes:
    """The service's uniform error shape (+ optional ``Retry-After``)."""
    payload: Dict[str, object] = {"error": message}
    if reason:
        payload["reason"] = reason
    headers: Dict[str, str] = {}
    if retry_after is not None:
        headers["Retry-After"] = str(max(1, int(round(retry_after))))
        payload["retry_after"] = max(1, int(round(retry_after)))
    return json_response(status, payload, extra_headers=headers)


# --------------------------------------------------------------------------- #
# WebSocket handshake
# --------------------------------------------------------------------------- #

def websocket_accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WEBSOCKET_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def websocket_client_key() -> str:
    """A fresh random ``Sec-WebSocket-Key`` (client side)."""
    return base64.b64encode(os.urandom(16)).decode("latin-1")


def websocket_handshake_response(request: HttpRequest) -> bytes:
    """The 101 response completing a WebSocket upgrade."""
    client_key = request.header("sec-websocket-key")
    if not client_key:
        raise ProtocolError("upgrade request is missing Sec-WebSocket-Key")
    head = (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}\r\n"
        "\r\n"
    )
    return head.encode("latin-1")


# --------------------------------------------------------------------------- #
# WebSocket frame codec (sans-I/O)
# --------------------------------------------------------------------------- #

def encode_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """Serialise one unfragmented WebSocket frame.

    Clients MUST mask (``mask=True``), servers MUST NOT (RFC 6455 §5.1);
    the codec enforces neither so tests can exercise both directions.
    """
    length = len(payload)
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    head += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + masked


def decode_frame(buffer: bytes) -> Optional[Tuple[int, bytes, int]]:
    """Parse one frame from ``buffer``.

    Returns ``(opcode, payload, bytes_consumed)`` or ``None`` when the
    buffer does not yet hold a complete frame.  Fragmented messages
    (``FIN=0`` or continuation frames) raise :class:`ProtocolError` -- every
    message the service exchanges fits one frame.
    """
    if len(buffer) < 2:
        return None
    first, second = buffer[0], buffer[1]
    fin = bool(first & 0x80)
    opcode = first & 0x0F
    if not fin or opcode == OP_CONT:
        raise ProtocolError("fragmented WebSocket messages are not supported")
    masked = bool(second & 0x80)
    length = second & 0x7F
    offset = 2
    if length == 126:
        if len(buffer) < offset + 2:
            return None
        (length,) = struct.unpack_from(">H", buffer, offset)
        offset += 2
    elif length == 127:
        if len(buffer) < offset + 8:
            return None
        (length,) = struct.unpack_from(">Q", buffer, offset)
        offset += 8
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload of {length} bytes exceeds {MAX_FRAME_BYTES}")
    key = b""
    if masked:
        if len(buffer) < offset + 4:
            return None
        key = buffer[offset:offset + 4]
        offset += 4
    if len(buffer) < offset + length:
        return None
    payload = buffer[offset:offset + length]
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload, offset + length


def encode_text(payload: object, mask: bool = False) -> bytes:
    """A text frame carrying ``payload`` as JSON."""
    return encode_frame(
        # reprolint: disable=canonical-json -- transient WebSocket framing:
        # frames are length-prefixed on the wire and never persisted,
        # hashed or signed, so canonical byte form buys nothing here.
        json.dumps(payload, sort_keys=True).encode("utf-8"), OP_TEXT, mask=mask
    )


def encode_close(code: int = 1000, mask: bool = False) -> bytes:
    """A close frame with the given status code."""
    return encode_frame(struct.pack(">H", code), OP_CLOSE, mask=mask)


async def read_frame(reader, buffer: bytearray) -> Tuple[int, bytes]:
    """Read one complete frame from an asyncio stream.

    ``buffer`` holds bytes carried over between calls (the stream may
    deliver several frames in one read).  Raises :class:`ProtocolError` on
    malformed frames and :class:`ConnectionError` on EOF mid-frame.
    """
    while True:
        decoded = decode_frame(bytes(buffer))
        if decoded is not None:
            opcode, payload, consumed = decoded
            del buffer[:consumed]
            return opcode, payload
        chunk = await reader.read(65536)
        if not chunk:
            raise ConnectionError("WebSocket peer closed mid-frame")
        buffer += chunk
