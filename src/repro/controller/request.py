"""Memory request types exchanged between cores and the memory controller."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.organization import DramAddress


class RequestType(enum.Enum):
    """Demand request classes."""

    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


@dataclass
class MemoryRequest:
    """A demand memory request (one cache line).

    The request carries its decoded DRAM coordinates so the controller never
    has to re-run the address mapping, and a small amount of life-cycle
    book-keeping used by the statistics and by the cores.
    """

    address: int
    request_type: RequestType
    core_id: int
    arrival_cycle: int
    dram: Optional[DramAddress] = None
    bank_id: int = -1

    #: Unique, monotonically increasing id (used for FCFS tie-breaking).
    request_id: int = field(default_factory=lambda: next(_request_ids))

    #: Cycle at which the column command (RD/WR) was issued, or None.
    issued_cycle: Optional[int] = None

    #: Cycle at which the data is available (read) / the write is complete.
    completion_cycle: Optional[int] = None

    #: True if this request hit an already-open row when first scheduled.
    row_hit: Optional[bool] = None

    @property
    def is_read(self) -> bool:
        return self.request_type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.request_type is RequestType.WRITE

    @property
    def is_complete(self) -> bool:
        return self.completion_cycle is not None

    def latency(self) -> Optional[int]:
        """Total queuing + service latency in DRAM cycles (None if pending)."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RD" if self.is_read else "WR"
        return (
            f"MemoryRequest({kind} core={self.core_id} bank={self.bank_id} "
            f"row={self.dram.row if self.dram else '?'} @{self.arrival_cycle})"
        )
