"""Memory request types exchanged between cores and the memory controller."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.organization import DramAddress


class RequestType(enum.Enum):
    """Demand request classes."""

    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """A demand memory request (one cache line).

    The request carries its decoded DRAM coordinates so the controller never
    has to re-run the address mapping, and a small amount of life-cycle
    book-keeping used by the statistics and by the cores.
    """

    address: int
    request_type: RequestType
    core_id: int
    arrival_cycle: int
    dram: Optional[DramAddress] = None
    bank_id: int = -1

    #: Unique, monotonically increasing id (used for FCFS tie-breaking).
    request_id: int = field(default_factory=lambda: next(_request_ids))

    #: Cycle at which the column command (RD/WR) was issued, or None.
    issued_cycle: Optional[int] = None

    #: Cycle at which the data is available (read) / the write is complete.
    completion_cycle: Optional[int] = None

    #: True if this request hit an already-open row when first scheduled.
    row_hit: Optional[bool] = None

    @property
    def is_read(self) -> bool:
        return self.request_type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.request_type is RequestType.WRITE

    @property
    def is_complete(self) -> bool:
        return self.completion_cycle is not None

    def latency(self) -> Optional[int]:
        """Total queuing + service latency in DRAM cycles (None if pending)."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RD" if self.is_read else "WR"
        return (
            f"MemoryRequest({kind} core={self.core_id} bank={self.bank_id} "
            f"row={self.dram.row if self.dram else '?'} @{self.arrival_cycle})"
        )


class RequestPool:
    """Free-list recycler for :class:`MemoryRequest` objects.

    The request path is the simulator's highest-churn allocation site: every
    LLC miss and posted write allocates a request that dies as soon as its
    completion is drained.  The pool hands those objects back instead:
    :meth:`acquire` either recycles a released request (re-initialising every
    life-cycle field and stamping a *fresh* ``request_id``, which FCFS
    tie-breaking requires to stay monotonic) or falls through to a normal
    allocation.

    Safety rule: a request may only be released once nothing references it
    any more -- in the system simulator that is the moment its completion has
    been drained and (for reads) the owning core notified, since cores drop
    their reference during notification.
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        self._free: list = []

    def acquire(
        self,
        address: int,
        request_type: RequestType,
        core_id: int,
        arrival_cycle: int,
    ) -> MemoryRequest:
        """Return a freshly initialised request (recycled when possible)."""
        free = self._free
        if not free:
            return MemoryRequest(
                address=address,
                request_type=request_type,
                core_id=core_id,
                arrival_cycle=arrival_cycle,
            )
        request = free.pop()
        request.address = address
        request.request_type = request_type
        request.core_id = core_id
        request.arrival_cycle = arrival_cycle
        request.dram = None
        request.bank_id = -1
        request.request_id = next(_request_ids)
        request.issued_cycle = None
        request.completion_cycle = None
        request.row_hit = None
        return request

    def release(self, request: MemoryRequest) -> None:
        """Hand a dead request back for reuse."""
        self._free.append(request)

    def __len__(self) -> int:
        return len(self._free)
