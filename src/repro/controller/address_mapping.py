"""Physical-address to DRAM-coordinate mappings.

The paper's main evaluation uses the MOP (Minimalist Open Page) address
mapping (Table 2); the storage / related-work discussion also mentions
RoBaRaCoCh, and Appendix C evaluates ABACuS with ABACuS's own mapping.  All
three are implemented here as bit-field permutations of the physical address,
which keeps them trivially bijective (verified by property-based tests).

A mapping is described by the order of address fields from the least
significant bit upwards; every field's width is derived from the DRAM
organization.

Every mapping is *channel-aware*: with a multi-channel
:class:`~repro.dram.organization.DramOrganization` the ``channel`` field
consumes ``log2(channels)`` address bits (zero bits -- and therefore the
exact single-channel layout -- when ``channels == 1``).  Two channel
placements are offered per base mapping:

* the default (``"MOP"``, ``"RoBaRaCoCh"``, ``"ABACuS"``) interleaves
  channels at cache-line granularity -- the channel bits sit directly above
  the line offset, so consecutive lines alternate channels and a streaming
  core spreads its bandwidth across every channel, and
* a row-interleaved variant (``"MOP-RI"``, ``"RoBaRaCoCh-RI"``,
  ``"ABACuS-RI"``) places the channel bits above the row bits, so each
  channel owns large contiguous regions -- useful for per-channel isolation
  studies (e.g. pinning an attacker and its victims to different channels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.organization import DramAddress, DramOrganization


def _bits_for(count: int) -> int:
    """Number of address bits needed to index ``count`` items."""
    if count <= 0:
        raise ValueError("count must be positive")
    return max(0, math.ceil(math.log2(count)))


#: Field names understood by :class:`AddressMapping`.
FIELDS = ("offset", "column_low", "column_high", "bank", "bankgroup", "rank", "row", "channel")


@dataclass(frozen=True)
class AddressMapping:
    """A bijective physical-address to DRAM-coordinate mapping.

    Attributes:
        organization: the DRAM geometry being addressed.
        field_order: field names from least to most significant bit.
        name: human-readable mapping name.
        column_low_bits: how many column bits sit below the bank bits
            (0 for RoBaRaCoCh, >0 for MOP-style mappings).
    """

    organization: DramOrganization
    field_order: Tuple[str, ...]
    name: str
    column_low_bits: int = 0

    def __post_init__(self) -> None:
        # Decode runs once per LLC miss, so the per-field (shift, mask)
        # pairs are precomputed instead of rebuilding the width table per
        # call.  ``object.__setattr__`` because the dataclass is frozen; the
        # plan is derived state, not a field (equality/repr are unaffected).
        widths = self.field_widths()
        shifts: Dict[str, int] = {}
        masks: Dict[str, int] = {}
        shift = 0
        for field in self.field_order:
            width = widths[field]
            shifts[field] = shift
            masks[field] = (1 << width) - 1
            shift += width
        plan = tuple(
            (shifts[field], masks[field])
            for field in (
                "channel", "rank", "bankgroup", "bank", "row",
                "column_high", "column_low",
            )
        )
        object.__setattr__(self, "_decode_plan", plan)
        object.__setattr__(self, "_column_low_width", widths["column_low"])

    def field_widths(self) -> Dict[str, int]:
        """Bit width of every field for this organization."""
        org = self.organization
        column_bits = _bits_for(org.columns)
        column_low = min(self.column_low_bits, column_bits)
        return {
            "offset": _bits_for(org.cacheline_bytes),
            "column_low": column_low,
            "column_high": column_bits - column_low,
            "bank": _bits_for(org.banks_per_group),
            "bankgroup": _bits_for(org.bankgroups),
            "rank": _bits_for(org.ranks),
            "row": _bits_for(org.rows),
            "channel": _bits_for(org.channels),
        }

    @property
    def address_bits(self) -> int:
        """Total number of physical address bits consumed by the mapping."""
        return sum(self.field_widths().values())

    def decode(self, address: int) -> DramAddress:
        """Decode a physical byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        (
            (ch_shift, ch_mask),
            (ra_shift, ra_mask),
            (bg_shift, bg_mask),
            (ba_shift, ba_mask),
            (ro_shift, ro_mask),
            (ch_hi_shift, ch_hi_mask),
            (ch_lo_shift, ch_lo_mask),
        ) = self._decode_plan
        column = (
            ((address >> ch_hi_shift) & ch_hi_mask) << self._column_low_width
        ) | ((address >> ch_lo_shift) & ch_lo_mask)
        return DramAddress(
            channel=(address >> ch_shift) & ch_mask,
            rank=(address >> ra_shift) & ra_mask,
            bankgroup=(address >> bg_shift) & bg_mask,
            bank=(address >> ba_shift) & ba_mask,
            row=(address >> ro_shift) & ro_mask,
            column=column,
        )

    def encode(self, dram: DramAddress) -> int:
        """Encode DRAM coordinates back into a physical byte address."""
        widths = self.field_widths()
        low_mask = (1 << widths["column_low"]) - 1
        values = {
            "offset": 0,
            "column_low": dram.column & low_mask,
            "column_high": dram.column >> widths["column_low"],
            "bank": dram.bank,
            "bankgroup": dram.bankgroup,
            "rank": dram.rank,
            "row": dram.row,
            "channel": dram.channel,
        }
        address = 0
        shift = 0
        for field in self.field_order:
            width = widths[field]
            if values[field] >= (1 << width) and width >= 0 and values[field] != 0:
                if values[field] >> width:
                    raise ValueError(f"{field} value {values[field]} does not fit in {width} bits")
            address |= values[field] << shift
            shift += width
        return address


def mop_mapping(org: DramOrganization, mop_width_bits: int = 2) -> AddressMapping:
    """Minimalist Open Page mapping (MOP), the paper's default (Table 2).

    Consecutive cache lines first fill a small number of columns (the MOP
    group), then interleave across banks, bank groups and ranks, and only
    then move to the next column group / row.  This balances row-buffer
    locality and bank-level parallelism.
    """
    return AddressMapping(
        organization=org,
        field_order=(
            "offset",
            "channel",
            "column_low",
            "bank",
            "bankgroup",
            "rank",
            "column_high",
            "row",
        ),
        name="MOP",
        column_low_bits=mop_width_bits,
    )


def robarracoch_mapping(org: DramOrganization) -> AddressMapping:
    """RoBaRaCoCh: row | bank | rank | column | channel (MSB to LSB)."""
    return AddressMapping(
        organization=org,
        field_order=(
            "offset",
            "channel",
            "column_low",
            "column_high",
            "rank",
            "bank",
            "bankgroup",
            "row",
        ),
        name="RoBaRaCoCh",
        column_low_bits=0,
    )


def abacus_mapping(org: DramOrganization) -> AddressMapping:
    """ABACuS's address mapping (Appendix C).

    Cache blocks interleave across all banks before moving to the next
    column, so consecutive blocks of a page land on the *same row address* in
    different banks -- the property ABACuS's sibling counters rely on, and
    which also lowers the row-conflict rate of the baseline.
    """
    return AddressMapping(
        organization=org,
        field_order=(
            "offset",
            "channel",
            "bank",
            "bankgroup",
            "rank",
            "column_low",
            "column_high",
            "row",
        ),
        name="ABACuS",
        column_low_bits=0,
    )


def row_interleaved(base: AddressMapping) -> AddressMapping:
    """The row-interleaved channel variant of ``base``.

    The ``channel`` field moves from just above the line offset to the most
    significant position (above ``row``), so each channel owns contiguous
    address regions instead of alternating at cache-line granularity.  The
    permutation stays bijective, so decode/encode round-trips are preserved
    for every channel count.
    """
    reordered = tuple(f for f in base.field_order if f != "channel") + ("channel",)
    return AddressMapping(
        organization=base.organization,
        field_order=reordered,
        name=f"{base.name}-RI",
        column_low_bits=base.column_low_bits,
    )


#: Base mapping constructors, by name.
_BASE_MAPPINGS = {
    "MOP": mop_mapping,
    "RoBaRaCoCh": robarracoch_mapping,
    "ABACuS": abacus_mapping,
}

#: All mapping names accepted by :func:`mapping_by_name`: every base mapping
#: plus its row-interleaved ``-RI`` channel variant.
MAPPING_NAMES: Tuple[str, ...] = tuple(_BASE_MAPPINGS) + tuple(
    f"{name}-RI" for name in _BASE_MAPPINGS
)


def mapping_by_name(name: str, org: DramOrganization) -> AddressMapping:
    """Look up a mapping constructor by name.

    ``-RI`` suffixed names select the row-interleaved channel placement of
    the corresponding base mapping (see :func:`row_interleaved`).
    """
    base_name, _, suffix = name.partition("-")
    if base_name in _BASE_MAPPINGS and suffix == "RI":
        return row_interleaved(_BASE_MAPPINGS[base_name](org))
    if name not in _BASE_MAPPINGS:
        raise ValueError(
            f"unknown address mapping {name!r}; expected one of {sorted(MAPPING_NAMES)}"
        )
    return _BASE_MAPPINGS[name](org)
