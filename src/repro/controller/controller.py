"""The memory controller.

The controller owns the DRAM device, the demand request queues, the FR-FCFS
scheduler, periodic refresh, and all read-disturbance management on the
controller side:

* it hosts controller-side mitigation mechanisms (PRFM / Graphene / Hydra /
  PARA / ABACuS) and serves their preventive refreshes and RFM requests, and
* it implements the PRAC back-off protocol: after observing the ``alert_n``
  signal it may keep serving requests for the window of normal traffic
  (tABOACT), then it precharges all banks and issues RFM commands -- a fixed
  number for PRAC (recovery period), or for as long as the device keeps the
  back-off asserted for Chronus.

The controller issues at most one DRAM command per cycle (single command
bus).  ``tick`` returns whether a command was issued plus a hint of the next
cycle at which the controller could do useful work, which the system
simulator uses to skip idle cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.controller.address_mapping import AddressMapping
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.core.mitigation import ControllerMitigation
from repro.dram.bank import BankState
from repro.dram.device import DramDevice
from repro.dram.refresh import RefreshScheduler

#: Sentinel "no event" hint.
FAR_FUTURE = 1 << 62


@dataclass
class ControllerStats:
    """Aggregate statistics exported after a simulation."""

    reads_served: int = 0
    writes_served: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    rfms: int = 0
    backoffs_observed: int = 0
    preventive_refresh_rows: int = 0
    total_read_latency: int = 0

    def average_read_latency(self) -> float:
        if self.reads_served == 0:
            return 0.0
        return self.total_read_latency / self.reads_served


class MemoryController:
    """A single-channel DDR5 memory controller.

    Multi-channel systems instantiate one controller per channel behind a
    :class:`~repro.controller.router.ChannelRouter`; each controller owns its
    own device, queues, scheduler, refresh state and back-off protocol.
    """

    def __init__(
        self,
        device: DramDevice,
        mapping: AddressMapping,
        mechanism: Optional[ControllerMitigation] = None,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        scheduler_cap: int = 4,
        write_drain_high: int = 48,
        write_drain_low: int = 16,
    ) -> None:
        self.device = device
        self.mapping = mapping
        self.mechanism = mechanism
        self.timing = device.timing
        self.organization = device.organization
        self.read_queue_size = read_queue_size
        self.write_queue_size = write_queue_size
        self.scheduler = FrFcfsCapScheduler(cap=scheduler_cap)
        self.refresh = RefreshScheduler(self.organization.ranks, self.timing)
        self.write_drain_high = write_drain_high
        self.write_drain_low = write_drain_low

        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self._inflight_reads: List[MemoryRequest] = []
        self._completed: List[MemoryRequest] = []
        self._draining_writes = False

        # Back-off protocol state.
        self._rfm_due_cycle: Optional[int] = None
        self._in_recovery = False

        self.stats = ControllerStats()

    # ------------------------------------------------------------------ #
    # Interface used by the cores / system simulator
    # ------------------------------------------------------------------ #
    def can_accept(self, request_type: RequestType) -> bool:
        """True if the corresponding queue has space."""
        if request_type is RequestType.READ:
            return len(self.read_queue) < self.read_queue_size
        return len(self.write_queue) < self.write_queue_size

    def enqueue(self, request: MemoryRequest) -> bool:
        """Decode and enqueue a demand request.  Returns False if full.

        Requests already decoded upstream (the multi-channel
        :class:`~repro.controller.router.ChannelRouter` decodes once to pick
        the channel) are enqueued as-is.
        """
        if not self.can_accept(request.request_type):
            return False
        if request.dram is None:
            request.dram = self.mapping.decode(request.address)
            request.bank_id = request.dram.flat_bank(self.organization)
        if request.is_read:
            self.read_queue.append(request)
        else:
            self.write_queue.append(request)
        return True

    def drain_completed(self) -> List[MemoryRequest]:
        """Return (and clear) the requests completed since the last call."""
        completed, self._completed = self._completed, []
        return completed

    def pending_requests(self) -> int:
        """Demand requests still queued or in flight."""
        return len(self.read_queue) + len(self.write_queue) + len(self._inflight_reads)

    # ------------------------------------------------------------------ #
    # Main per-cycle entry point
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> Tuple[bool, int]:
        """Attempt to issue one DRAM command at ``cycle``.

        Returns ``(issued, next_hint)`` where ``next_hint`` is the earliest
        cycle at which calling ``tick`` again may be useful (only meaningful
        when ``issued`` is False).
        """
        self.refresh.tick(cycle)
        self._retire_inflight(cycle)
        self._observe_backoff(cycle)

        issued = self._service_backoff(cycle)
        if not issued and not self._backoff_blocks_traffic(cycle):
            issued = (
                self._service_refresh(cycle)
                or self._service_prfm(cycle)
                or self._service_preventive(cycle)
                or self._service_demand(cycle)
            )
        if issued:
            return True, cycle + 1
        return False, self._next_event_hint(cycle)

    def _backoff_blocks_traffic(self, cycle: int) -> bool:
        """True once the window of normal traffic after a back-off has ended.

        While the recovery period is pending or in progress the controller
        must not issue demand commands: new activations would both delay the
        mandated RFM commands and re-open banks that the recovery needs
        precharged.
        """
        if self._in_recovery:
            return True
        return self._rfm_due_cycle is not None and cycle >= self._rfm_due_cycle

    # ------------------------------------------------------------------ #
    # Back-off (alert_n) handling
    # ------------------------------------------------------------------ #
    def _observe_backoff(self, cycle: int) -> None:
        if self._rfm_due_cycle is not None or self._in_recovery:
            return
        if self.device.backoff_asserted():
            self.stats.backoffs_observed += 1
            self._rfm_due_cycle = (
                cycle + self.timing.tBackOffLatency + self.timing.tABOACT
            )

    def _service_backoff(self, cycle: int) -> bool:
        """Handle the recovery period of the back-off protocol."""
        if not self._in_recovery:
            if self._rfm_due_cycle is None or cycle < self._rfm_due_cycle:
                return False
            self._in_recovery = True

        all_banks = list(range(self.organization.total_banks))
        # All banks must be precharged before an all-bank RFM can be issued.
        for bank_id in all_banks:
            bank = self.device.banks[bank_id]
            if bank.state is BankState.ACTIVE:
                if self.device.can_precharge(bank_id, cycle):
                    self.device.precharge(bank_id, cycle)
                    return True
                return False
        if not self.device.can_rfm(all_banks, cycle):
            return False
        refreshed = self.device.rfm(all_banks, cycle)
        self.stats.rfms += 1
        self.stats.preventive_refresh_rows += refreshed
        if not self.device.wants_more_rfm():
            self._in_recovery = False
            self._rfm_due_cycle = None
        return True

    # ------------------------------------------------------------------ #
    # Periodic refresh
    # ------------------------------------------------------------------ #
    def _service_refresh(self, cycle: int) -> bool:
        for rank in self.refresh.ranks_needing_refresh():
            urgent = self.refresh.refresh_urgent(rank)
            bank_ids = self.device.banks_in_rank(rank)
            if not urgent:
                # Postpone the REF (DDR5 allows up to four postponements)
                # unless the rank is completely idle, in which case refresh
                # opportunistically.
                if self._rank_has_pending_demand(rank):
                    continue
                if self.device.can_refresh(rank, cycle):
                    self.device.refresh(rank, cycle)
                    self.refresh.refresh_issued(rank)
                    self.stats.refreshes += 1
                    return True
                continue
            # Urgent: new activations to this rank are blocked (see
            # _refresh_blocked_ranks); close its open banks, then refresh.
            open_banks = [
                b for b in bank_ids if self.device.banks[b].state is BankState.ACTIVE
            ]
            if open_banks:
                for bank_id in open_banks:
                    if self.device.can_precharge(bank_id, cycle):
                        self.device.precharge(bank_id, cycle)
                        return True
                continue
            if self.device.can_refresh(rank, cycle):
                self.device.refresh(rank, cycle)
                self.refresh.refresh_issued(rank)
                self.stats.refreshes += 1
                return True
        return False

    def _rank_has_pending_demand(self, rank: int) -> bool:
        """True if any queued demand request targets a bank of ``rank``."""
        per_rank = self.organization.banks_per_rank
        low, high = rank * per_rank, (rank + 1) * per_rank
        return any(
            low <= request.bank_id < high
            for request in self.read_queue + self.write_queue
        )

    def _refresh_blocked_ranks(self) -> List[int]:
        """Ranks whose refresh debt is urgent: no new ACTs may be issued."""
        return [
            rank
            for rank in self.refresh.ranks_needing_refresh()
            if self.refresh.refresh_urgent(rank)
        ]

    # ------------------------------------------------------------------ #
    # Controller-side mechanism servicing
    # ------------------------------------------------------------------ #
    def _service_prfm(self, cycle: int) -> bool:
        if self.mechanism is None:
            return False
        for bank_id in range(self.organization.total_banks):
            if not self.mechanism.rfm_needed(bank_id):
                continue
            bank = self.device.banks[bank_id]
            if bank.state is BankState.ACTIVE:
                if self.device.can_precharge(bank_id, cycle):
                    self.device.precharge(bank_id, cycle)
                    return True
                continue
            if self.device.can_rfm([bank_id], cycle):
                refreshed = self.device.rfm([bank_id], cycle)
                self.mechanism.acknowledge_rfm(
                    bank_id,
                    cycle,
                    on_die_refreshed=(
                        refreshed if self.device.mitigation is not None else None
                    ),
                )
                self.stats.rfms += 1
                self.stats.preventive_refresh_rows += self.mechanism.victim_rows_per_aggressor
                return True
        return False

    def _service_preventive(self, cycle: int) -> bool:
        if self.mechanism is None:
            return False
        for bank_id in self.mechanism.banks_with_pending_refreshes():
            bank = self.device.banks[bank_id]
            if bank.state is BankState.ACTIVE:
                if self.device.can_precharge(bank_id, cycle):
                    self.device.precharge(bank_id, cycle)
                    return True
                continue
            if self.device.can_victim_refresh(bank_id, cycle):
                refresh = self.mechanism.pop_refresh(bank_id, cycle)
                if refresh is None:
                    continue
                self.device.victim_refresh(bank_id, refresh.num_rows, cycle)
                self.stats.preventive_refresh_rows += refresh.num_rows
                return True
        return False

    # ------------------------------------------------------------------ #
    # Demand request servicing (FR-FCFS + Cap)
    # ------------------------------------------------------------------ #
    def _active_queue(self) -> List[MemoryRequest]:
        if self._draining_writes:
            if len(self.write_queue) <= self.write_drain_low:
                self._draining_writes = False
        if not self._draining_writes:
            if len(self.write_queue) >= self.write_drain_high or (
                not self.read_queue and self.write_queue
            ):
                self._draining_writes = True
        if self._draining_writes and self.write_queue:
            return self.write_queue
        return self.read_queue

    def _service_demand(self, cycle: int) -> bool:
        queue = self._active_queue()
        if not queue:
            return False
        request = self.scheduler.choose(queue, self.device)
        if request is not None and self._serve_request(request, queue, cycle):
            return True
        # First-ready fallback: try any request whose next command is legal.
        for request in sorted(queue, key=lambda r: r.request_id):
            if self._serve_request(request, queue, cycle):
                return True
        return False

    def _serve_request(
        self, request: MemoryRequest, queue: List[MemoryRequest], cycle: int
    ) -> bool:
        bank_id = request.bank_id
        open_row = self.device.open_row(bank_id)
        target_row = request.dram.row

        if open_row == target_row:
            hit = request.row_hit if request.row_hit is not None else True
            if request.is_read and self.device.can_read(bank_id, cycle):
                ready = self.device.read(bank_id, cycle)
                self._complete_column(request, queue, cycle, ready, row_hit=hit)
                return True
            if request.is_write and self.device.can_write(bank_id, cycle):
                done = self.device.write(bank_id, cycle)
                self._complete_column(request, queue, cycle, done, row_hit=hit)
                return True
            return False

        if open_row is not None:
            if self._preserve_open_row(bank_id, open_row, queue):
                # A pending request still targets the open row and the
                # column-over-row reordering cap has not been exhausted, so
                # the conflicting request must wait (FR-FCFS row-hit-first).
                return False
            if self.device.can_precharge(bank_id, cycle):
                self.device.precharge(bank_id, cycle)
                self.stats.row_conflicts += 1
                request.row_hit = False
                # The older row-conflict request finally makes progress, so
                # the bank's column-over-row reordering budget resets.
                self.scheduler.on_scheduled(request, was_row_hit=False)
                return True
            return False

        rank = self.device.rank_of_bank(bank_id)
        if self.refresh.refresh_urgent(rank):
            # The rank must drain for an overdue periodic refresh first.
            return False
        if self.device.can_activate(bank_id, cycle):
            self.device.activate(bank_id, target_row, cycle)
            self.stats.row_misses += 1
            request.row_hit = False
            if self.mechanism is not None:
                self.mechanism.on_activate(bank_id, target_row, cycle)
            return True
        return False

    def _preserve_open_row(
        self, bank_id: int, open_row: int, queue: List[MemoryRequest]
    ) -> bool:
        """True if the open row should be kept open for a pending row hit."""
        if self.scheduler.cap_reached(bank_id):
            return False
        return any(
            r.bank_id == bank_id and r.dram.row == open_row for r in queue
        )

    def _complete_column(
        self,
        request: MemoryRequest,
        queue: List[MemoryRequest],
        cycle: int,
        completion: int,
        row_hit: bool,
    ) -> None:
        request.issued_cycle = cycle
        request.completion_cycle = completion
        request.row_hit = row_hit
        queue.remove(request)
        self.scheduler.on_scheduled(request, row_hit)
        if row_hit:
            self.stats.row_hits += 1
        if request.is_read:
            self.stats.reads_served += 1
            self.stats.total_read_latency += completion - request.arrival_cycle
            self._inflight_reads.append(request)
        else:
            self.stats.writes_served += 1
            self._completed.append(request)

    def _retire_inflight(self, cycle: int) -> None:
        if not self._inflight_reads:
            return
        still_waiting = []
        for request in self._inflight_reads:
            if request.completion_cycle is not None and request.completion_cycle <= cycle:
                self._completed.append(request)
            else:
                still_waiting.append(request)
        self._inflight_reads = still_waiting

    # ------------------------------------------------------------------ #
    # Idle-time hints
    # ------------------------------------------------------------------ #
    def _next_event_hint(self, cycle: int) -> int:
        events: List[int] = []
        if self._rfm_due_cycle is not None and not self._in_recovery:
            events.append(self._rfm_due_cycle)
        if self._in_recovery or self.refresh.ranks_needing_refresh():
            for bank in self.device.banks:
                if bank.state is BankState.ACTIVE:
                    events.append(bank.ready_cycle_for_precharge())
                else:
                    events.append(bank.ready_cycle_for_activate())
        for request in self.read_queue + self.write_queue:
            bank = self.device.banks[request.bank_id]
            if bank.open_row == request.dram.row:
                ready = (
                    bank.ready_cycle_for_read()
                    if request.is_read
                    else bank.ready_cycle_for_write()
                )
            elif bank.open_row is not None:
                ready = bank.ready_cycle_for_precharge()
            else:
                ready = bank.ready_cycle_for_activate()
            events.append(ready)
        if self.mechanism is not None:
            for bank_id in self.mechanism.banks_with_pending_refreshes():
                events.append(self.device.banks[bank_id].ready_cycle_for_activate())
        if self._inflight_reads:
            events.append(min(r.completion_cycle for r in self._inflight_reads))
        # A periodic refresh may become due in the future even when idle.
        future = [event for event in events if event > cycle]
        if not future:
            return cycle + 1 if events else FAR_FUTURE
        return min(future)
