"""The memory controller.

The controller owns the DRAM device, the demand request queues, the FR-FCFS
scheduler, periodic refresh, and all read-disturbance management on the
controller side:

* it hosts controller-side mitigation mechanisms (PRFM / Graphene / Hydra /
  PARA / ABACuS) and serves their preventive refreshes and RFM requests, and
* it implements the PRAC back-off protocol: after observing the ``alert_n``
  signal it may keep serving requests for the window of normal traffic
  (tABOACT), then it precharges all banks and issues RFM commands -- a fixed
  number for PRAC (recovery period), or for as long as the device keeps the
  back-off asserted for Chronus.

The controller issues at most one DRAM command per cycle (single command
bus).  ``tick`` returns whether a command was issued plus a hint of the next
cycle at which the controller could do useful work, which the system
simulator uses to skip idle cycles.

Hot-path design (the event-horizon engine):

* Demand queues are **bucketed per bank** and the buckets are maintained
  incrementally on enqueue/dequeue, so neither the FR-FCFS scan, the
  first-ready fallback, nor the wake-hint computation ever rescans the flat
  queue per candidate.
* The wake hint (:meth:`next_event_cycle`) is *precise*: it covers every
  event source that can unblock the controller -- per-bank command readiness,
  rank-level tRRD/tFAW release, the earliest periodic-refresh due cycle
  (a time skip must never jump past a tREFI boundary), the back-off recovery
  deadline, pending preventive refreshes and pending RFMs, and in-flight
  read completions.  A hint that fires early merely costs a wasted wake; a
  hint that fires late would silently change simulated behaviour, which the
  strict-tick determinism harness guards against.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.controller.address_mapping import AddressMapping
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.core.mitigation import ControllerMitigation
from repro.dram.bank import BankState
from repro.dram.device import DramDevice
from repro.dram.refresh import RefreshScheduler

#: Sentinel "no event" hint.
FAR_FUTURE = 1 << 62

#: Arrival-order sort key of the demand candidate scan, hoisted so the
#: per-issue hot path does not build a closure per call.
_BY_REQUEST_ID = operator.attrgetter("request_id")

#: Queued-bank count at which the array kernels switch from scalar plane
#: reads to full vectorized folds.  Below this, NumPy ufunc dispatch costs
#: more than the Python loop it replaces (the scans visit only the queued
#: buckets); above it, one fold beats per-bank work.  Both paths compute
#: identical results -- the threshold trades wall-clock only.
_VECTOR_SCAN_MIN_BANKS = 64


@dataclass(slots=True)
class ControllerStats:
    """Aggregate statistics exported after a simulation."""

    reads_served: int = 0
    writes_served: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    rfms: int = 0
    backoffs_observed: int = 0
    preventive_refresh_rows: int = 0
    total_read_latency: int = 0

    def average_read_latency(self) -> float:
        if self.reads_served == 0:
            return 0.0
        return self.total_read_latency / self.reads_served


class MemoryController:
    """A single-channel DDR5 memory controller.

    Multi-channel systems instantiate one controller per channel behind a
    :class:`~repro.controller.router.ChannelRouter`; each controller owns its
    own device, queues, scheduler, refresh state and back-off protocol.
    """

    def __init__(
        self,
        device: DramDevice,
        mapping: AddressMapping,
        mechanism: Optional[ControllerMitigation] = None,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        scheduler_cap: int = 4,
        write_drain_high: int = 48,
        write_drain_low: int = 16,
        fast_kernels: bool = False,
    ) -> None:
        self.device = device
        self.mapping = mapping
        self.mechanism = mechanism
        self.timing = device.timing
        self.organization = device.organization
        self.read_queue_size = read_queue_size
        self.write_queue_size = write_queue_size
        self.scheduler = FrFcfsCapScheduler(cap=scheduler_cap)
        self.refresh = RefreshScheduler(self.organization.ranks, self.timing)
        self.write_drain_high = write_drain_high
        self.write_drain_low = write_drain_low
        # The on-die mechanism, cached: the back-off probe runs every tick
        # and must not chase device attributes for mechanisms that live on
        # the controller side (where it is None).
        self._on_die = device.mitigation

        # The demand queues live *only* as per-bank FIFO buckets, maintained
        # incrementally on enqueue/dequeue (empty buckets are pruned); the
        # flat per-type occupancy is a pair of counters.
        self._read_buckets: Dict[int, List[MemoryRequest]] = {}
        self._write_buckets: Dict[int, List[MemoryRequest]] = {}
        self._read_count = 0
        self._write_count = 0
        # Queued demand requests (read + write) per rank, for O(1)
        # refresh-postponing decisions.
        self._rank_demand: List[int] = [0] * self.organization.ranks
        self._banks_per_rank = self.organization.banks_per_rank
        self._all_banks: List[int] = list(range(self.organization.total_banks))
        self._inflight_reads: List[MemoryRequest] = []
        # Completed-but-undrained requests.  The ChannelRouter reads this
        # attribute directly (a truthiness check per channel per tick) to
        # skip the drain call when empty -- treat the name as part of the
        # hot-path contract, like the bank's ready-cycle attributes.
        self._completed: List[MemoryRequest] = []
        self._draining_writes = False

        # Back-off protocol state.
        self._rfm_due_cycle: Optional[int] = None
        self._in_recovery = False

        # Cached demand-section wake hint.  The per-bank readiness values it
        # derives from only change on an enqueue or an issued command, so
        # between those the cached minimum stays exact; a cached value that
        # fell into the past forces a recompute (see _next_event_hint).
        self._demand_hint: Optional[int] = None

        # Batch fast kernels (see docs/ARCHITECTURE.md, "Batch-vectorized
        # kernels").  When enabled:
        #
        # * ``enqueue`` folds the new request's bank readiness into the
        #   cached demand hint instead of dropping it (the other banks'
        #   readiness is unchanged, so the min stays exact);
        # * ``_service_demand`` skips the FR-FCFS scan outright when the
        #   cached hint proves no queued bank has a legal command at this
        #   cycle.  The skip additionally requires ``_demand_ready_now`` to
        #   be False: a bank that was already ready when the hint was
        #   computed is excluded from the strictly-future minimum, yet may
        #   become servable later without any issue event (e.g. the write
        #   drain hysteresis flips the active queue on an enqueue), so its
        #   presence disables the skip until the next recompute;
        # * ``_next_event_hint`` caches the refresh-pending bank scan, whose
        #   inputs only change on refresh accrual, an enqueue that raises a
        #   rank's demand (which can only *remove* scan events -- an early
        #   hint is a wasted wake, never a behaviour change) or an issued
        #   command.
        #
        # The scalar engine keeps ``fast_kernels=False`` and stays the
        # simple reference implementation; the batch-vs-scalar equivalence
        # tests pin byte-identical results.
        self._fast = fast_kernels
        self._demand_ready_now = True
        self._refresh_scan_hint: Optional[int] = None
        # Cached mechanism-pending scan (array kernels only; the object
        # backend recomputes it inline in _next_event_hint).  Its inputs --
        # the mechanism's pending sets and bank readiness -- change only on
        # an issued command, which drops the cache alongside the refresh
        # scan; pruning of stale pending entries can only *remove* events,
        # which keeps a cached value early-but-never-late.
        self._mech_scan_hint: Optional[int] = None

        self.stats = ControllerStats()

        # Structure-of-arrays kernels: when the device carries a timing
        # plane (the array bank backend, see dram/timing_plane.py), the
        # readiness scans are rebound to vectorized variants that fold over
        # the plane arrays instead of walking bank objects.  The rebinding
        # uses instance attributes exactly like the router's single-channel
        # fast path; the object backend keeps the reference implementations
        # above untouched.
        self._plane = device.timing_plane
        if self._plane is not None:
            self._bind_array_kernels()

    # ------------------------------------------------------------------ #
    # Interface used by the cores / system simulator
    # ------------------------------------------------------------------ #
    def can_accept(self, request_type: RequestType) -> bool:
        """True if the corresponding queue has space."""
        if request_type is RequestType.READ:
            return self._read_count < self.read_queue_size
        return self._write_count < self.write_queue_size

    def enqueue(self, request: MemoryRequest) -> bool:
        """Decode and enqueue a demand request.  Returns False if full.

        Requests already decoded upstream (the multi-channel
        :class:`~repro.controller.router.ChannelRouter` decodes once to pick
        the channel) are enqueued as-is.
        """
        if not self.can_accept(request.request_type):
            return False
        if request.dram is None:
            request.dram = self.mapping.decode(request.address)
            request.bank_id = request.dram.flat_bank(self.organization)
        if request.is_read:
            self._read_count += 1
            buckets = self._read_buckets
        else:
            self._write_count += 1
            buckets = self._write_buckets
        bucket = buckets.get(request.bank_id)
        if bucket is None:
            buckets[request.bank_id] = [request]
        else:
            bucket.append(request)
        self._rank_demand[request.bank_id // self._banks_per_rank] += 1
        if self._fast:
            # Incremental maintenance: only the enqueued bank gained a new
            # readiness event, so fold it into the cached minimum.  A value
            # at or below the current cycle makes the hint stale, which
            # forces the usual recompute at the next idle wake.
            hint = self._demand_hint
            if hint is not None:
                ready = self._bank_demand_ready(request.bank_id, request.is_read)
                if ready < hint:
                    self._demand_hint = ready
        else:
            self._demand_hint = None
        return True

    def _dequeue(self, request: MemoryRequest, is_read: bool) -> None:
        """Remove a serviced request from the bucket structures."""
        if is_read:
            self._read_count -= 1
            buckets = self._read_buckets
        else:
            self._write_count -= 1
            buckets = self._write_buckets
        bucket = buckets[request.bank_id]
        bucket.remove(request)
        if not bucket:
            del buckets[request.bank_id]
        self._rank_demand[request.bank_id // self._banks_per_rank] -= 1

    def drain_completed(self) -> List[MemoryRequest]:
        """Return (and clear) the requests completed since the last call.

        When nothing completed, the (empty) live list is returned without
        detaching it -- callers only iterate the result before their next
        drain, so the aliasing is unobservable and the per-call allocation
        disappears from the idle path.
        """
        completed = self._completed
        if not completed:
            return completed
        self._completed = []
        return completed

    def pending_requests(self) -> int:
        """Demand requests still queued or in flight."""
        return self._read_count + self._write_count + len(self._inflight_reads)

    # ------------------------------------------------------------------ #
    # Main per-cycle entry point
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> Tuple[bool, int]:
        """Attempt to issue one DRAM command at ``cycle``.

        Returns ``(issued, next_hint)`` where ``next_hint`` is the earliest
        cycle at which calling ``tick`` again may be useful (only meaningful
        when ``issued`` is False).
        """
        # Prologue with the O(1) guards inlined (this runs every busy
        # cycle): refresh accrual off-boundary, read retirement with nothing
        # due, and the back-off probe without an on-die mechanism are all
        # no-ops that must not cost a call each.
        refresh = self.refresh
        if cycle >= refresh._next_accrual:
            refresh.tick(cycle)
            # Accrual changes pending counts / urgency: the cached
            # refresh-pending bank scan is void.
            self._refresh_scan_hint = None
        reads = self._inflight_reads
        if reads and reads[0].completion_cycle <= cycle:
            self._retire_inflight(cycle)
        if self._rfm_due_cycle is None and not self._in_recovery:
            on_die = self._on_die
            if on_die is not None and on_die.backoff_asserted():
                self.stats.backoffs_observed += 1
                self._rfm_due_cycle = (
                    cycle + self.timing.tBackOffLatency + self.timing.tABOACT
                )

        issued = self._service_backoff(cycle)
        demand_issue = False
        if not issued and not self._backoff_blocks_traffic(cycle):
            # Guards inlined: each service stage is only entered when its
            # work queue is non-empty (this tick runs every busy cycle).
            mechanism = self.mechanism
            issued = (
                bool(self.refresh.ranks_needing_refresh())
                and self._service_refresh(cycle)
            )
            if not issued and mechanism is not None:
                issued = self._service_prfm(cycle) or (
                    mechanism.has_pending_refreshes()
                    and self._service_preventive(cycle)
                )
            if not issued:
                issued = demand_issue = self._service_demand(cycle)
        if issued:
            # Any command changes bank/rank readiness: drop the cached
            # demand hint (and the refresh-scan hint it feeds).  Fast-kernel
            # exception: a *demand* command only moves the served bank's own
            # readiness (its rank-level side effects push other banks later,
            # which keeps the cached minimum early-but-never-late), and
            # _service_demand already folded that bank back in -- so the
            # cached minimum survives demand bursts instead of forcing a
            # full bucket rescan at the next idle wake.
            if not (self._fast and demand_issue):
                self._demand_hint = None
            self._refresh_scan_hint = None
            self._mech_scan_hint = None
            return True, cycle + 1
        return False, self._next_event_hint(cycle)

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which this controller may make progress.

        Public alias of the wake hint ``tick`` returns, for callers that
        need the hint without attempting to issue.  Not a pure getter: it
        accrues refresh debt up to ``cycle`` first (the hint is only precise
        with an up-to-date due cycle), exactly as ``tick`` would.
        """
        self.refresh.tick(cycle)
        self._refresh_scan_hint = None
        return self._next_event_hint(cycle)

    def _backoff_blocks_traffic(self, cycle: int) -> bool:
        """True once the window of normal traffic after a back-off has ended.

        While the recovery period is pending or in progress the controller
        must not issue demand commands: new activations would both delay the
        mandated RFM commands and re-open banks that the recovery needs
        precharged.
        """
        if self._in_recovery:
            return True
        return self._rfm_due_cycle is not None and cycle >= self._rfm_due_cycle

    # ------------------------------------------------------------------ #
    # Back-off (alert_n) handling
    # ------------------------------------------------------------------ #
    def _service_backoff(self, cycle: int) -> bool:
        """Handle the recovery period of the back-off protocol."""
        if not self._in_recovery:
            if self._rfm_due_cycle is None or cycle < self._rfm_due_cycle:
                return False
            self._in_recovery = True

        all_banks = self._all_banks
        # All banks must be precharged before an all-bank RFM can be issued.
        for bank_id in all_banks:
            bank = self.device.banks[bank_id]
            if bank.state is BankState.ACTIVE:
                if self.device.can_precharge(bank_id, cycle):
                    self._precharge(bank_id, cycle)
                    return True
                return False
        if not self.device.can_rfm(all_banks, cycle):
            return False
        refreshed = self.device.rfm(all_banks, cycle)
        self.stats.rfms += 1
        self.stats.preventive_refresh_rows += refreshed
        if not self.device.wants_more_rfm():
            self._in_recovery = False
            self._rfm_due_cycle = None
        return True

    def _precharge(self, bank_id: int, cycle: int) -> None:
        """Issue a PRE and reset the bank's column-over-row streak.

        Every row closure goes through here: the scheduler's reordering
        budget belongs to the open row, so closing it (for a demand
        conflict, a periodic refresh, an RFM or back-off recovery) resets
        the bank's hit streak.
        """
        self.device.precharge(bank_id, cycle)
        self.scheduler.on_row_closed(bank_id)

    # ------------------------------------------------------------------ #
    # Periodic refresh
    # ------------------------------------------------------------------ #
    def _service_refresh(self, cycle: int) -> bool:
        pending_ranks = self.refresh.ranks_needing_refresh()
        device = self.device
        banks = device.banks
        for rank in pending_ranks:
            urgent = self.refresh.refresh_urgent(rank)
            bank_ids = device.banks_in_rank(rank)
            if not urgent:
                # Postpone the REF (DDR5 allows up to four postponements)
                # unless the rank is completely idle, in which case refresh
                # opportunistically.
                if self._rank_demand[rank]:
                    continue
                if device.can_refresh(rank, cycle):
                    device.refresh(rank, cycle)
                    self.refresh.refresh_issued(rank)
                    self.stats.refreshes += 1
                    return True
                continue
            # Urgent: new activations to this rank are blocked (see
            # _refresh_blocked_ranks); close its open banks, then refresh.
            open_banks = [
                b for b in bank_ids if banks[b].state is BankState.ACTIVE
            ]
            if open_banks:
                for bank_id in open_banks:
                    if device.can_precharge(bank_id, cycle):
                        self._precharge(bank_id, cycle)
                        return True
                continue
            if device.can_refresh(rank, cycle):
                device.refresh(rank, cycle)
                self.refresh.refresh_issued(rank)
                self.stats.refreshes += 1
                return True
        return False

    def _refresh_blocked_ranks(self) -> List[int]:
        """Ranks whose refresh debt is urgent: no new ACTs may be issued."""
        return [
            rank
            for rank in self.refresh.ranks_needing_refresh()
            if self.refresh.refresh_urgent(rank)
        ]

    # ------------------------------------------------------------------ #
    # Controller-side mechanism servicing
    # ------------------------------------------------------------------ #
    def _service_prfm(self, cycle: int) -> bool:
        mechanism = self.mechanism
        if mechanism is None:
            return False
        pending = mechanism.rfm_pending_banks()
        if not pending:
            return False
        for bank_id in pending:
            bank = self.device.banks[bank_id]
            if bank.state is BankState.ACTIVE:
                if self.device.can_precharge(bank_id, cycle):
                    self._precharge(bank_id, cycle)
                    return True
                continue
            if self.device.can_rfm([bank_id], cycle):
                refreshed = self.device.rfm([bank_id], cycle)
                mechanism.acknowledge_rfm(
                    bank_id,
                    cycle,
                    on_die_refreshed=(
                        refreshed if self.device.mitigation is not None else None
                    ),
                )
                self.stats.rfms += 1
                self.stats.preventive_refresh_rows += mechanism.victim_rows_per_aggressor
                return True
        return False

    def _service_preventive(self, cycle: int) -> bool:
        mechanism = self.mechanism
        if mechanism is None or not mechanism.has_pending_refreshes():
            return False
        # Direct key iteration over the pruned pending dict (hot-path
        # contract): safe because the dict is only mutated on a served
        # refresh, which returns out of the loop immediately.
        for bank_id in mechanism._pending:
            bank = self.device.banks[bank_id]
            if bank.state is BankState.ACTIVE:
                if self.device.can_precharge(bank_id, cycle):
                    self._precharge(bank_id, cycle)
                    return True
                continue
            if self.device.can_victim_refresh(bank_id, cycle):
                refresh = mechanism.pop_refresh(bank_id, cycle)
                if refresh is None:
                    continue
                self.device.victim_refresh(bank_id, refresh.num_rows, cycle)
                self.stats.preventive_refresh_rows += refresh.num_rows
                return True
        return False

    # ------------------------------------------------------------------ #
    # Demand request servicing (FR-FCFS + Cap)
    # ------------------------------------------------------------------ #
    def _active_queue_is_reads(self) -> bool:
        """Write-drain hysteresis: pick the queue type to serve this tick."""
        if self._draining_writes:
            if self._write_count <= self.write_drain_low:
                self._draining_writes = False
        if not self._draining_writes:
            if self._write_count >= self.write_drain_high or (
                not self._read_count and self._write_count
            ):
                self._draining_writes = True
        return not (self._draining_writes and self._write_count)

    def _service_demand(self, cycle: int) -> bool:
        is_read = self._active_queue_is_reads()
        if self._fast:
            # Batch fast path: the cached demand hint is the exact minimum
            # readiness over every queued bank of *both* queues, so a
            # strictly-future hint proves no candidate can issue -- the
            # whole FR-FCFS scan (pure on failure) is skipped.  The
            # hysteresis above still ran, so the drain flag's trajectory is
            # unchanged.  Disabled while a blocked-but-ready bank exists
            # (see __init__).
            hint = self._demand_hint
            if hint is not None and cycle < hint and not self._demand_ready_now:
                return False
        if is_read:
            if not self._read_count:
                return False
            buckets = self._read_buckets
        else:
            buckets = self._write_buckets
        request = self.scheduler.choose_from_buckets(buckets, self.device)
        if request is not None and self._serve_request(request, is_read, buckets, cycle):
            if self._fast:
                self._fold_bank_hint(request.bank_id)
            return True
        # First-ready fallback: try any request whose next command is legal.
        # Per bank only three requests can differ in outcome -- the bucket
        # head, the oldest row hit and the oldest row conflict (legality of a
        # column command or a precharge does not depend on which queued
        # request triggers it) -- so trying those in global FCFS order is
        # equivalent to the full-queue rescan this replaces.  Candidates
        # whose bank timing already rules the command out are dropped here
        # (pure pre-filter: _serve_request would reject them identically).
        banks = self.device.banks
        candidates: List[MemoryRequest] = []
        for bank_id, bucket in buckets.items():
            bank = banks[bank_id]
            open_row = bank.open_row
            head = bucket[0]
            if open_row is None:
                if cycle >= bank._next_act:
                    candidates.append(head)
                continue
            head_is_hit = head.dram.row == open_row
            second: Optional[MemoryRequest] = None
            for r in bucket:
                if (r.dram.row == open_row) != head_is_hit:
                    second = r
                    break
            hit_ready = cycle >= (bank._next_rd if is_read else bank._next_wr)
            pre_ready = cycle >= bank._next_pre
            if head_is_hit:
                if hit_ready:
                    candidates.append(head)
                if second is not None and pre_ready:
                    candidates.append(second)
            else:
                if pre_ready:
                    candidates.append(head)
                if second is not None and hit_ready:
                    candidates.append(second)
        candidates.sort(key=_BY_REQUEST_ID)
        for request in candidates:
            if self._serve_request(request, is_read, buckets, cycle):
                if self._fast:
                    self._fold_bank_hint(request.bank_id)
                return True
        return False

    def _serve_request(
        self,
        request: MemoryRequest,
        is_read: bool,
        buckets: Dict[int, List[MemoryRequest]],
        cycle: int,
    ) -> bool:
        bank_id = request.bank_id
        bank = self.device.banks[bank_id]
        open_row = bank.open_row
        target_row = request.dram.row

        if open_row == target_row:
            hit = request.row_hit if request.row_hit is not None else True
            if is_read:
                if cycle >= bank._next_rd:
                    ready = self.device.read(bank_id, cycle)
                    self._complete_column(request, is_read, cycle, ready, row_hit=hit)
                    return True
            elif cycle >= bank._next_wr:
                done = self.device.write(bank_id, cycle)
                self._complete_column(request, is_read, cycle, done, row_hit=hit)
                return True
            return False

        if open_row is not None:
            if self._preserve_open_row(bank_id, open_row, buckets):
                # A pending request still targets the open row and the
                # column-over-row reordering cap has not been exhausted, so
                # the conflicting request must wait (FR-FCFS row-hit-first).
                return False
            if cycle >= bank._next_pre:
                self._precharge(bank_id, cycle)
                self.stats.row_conflicts += 1
                request.row_hit = False
                # The older row-conflict request finally makes progress, so
                # the bank's column-over-row reordering budget resets.
                self.scheduler.on_scheduled(request, was_row_hit=False)
                return True
            return False

        rank = bank_id // self._banks_per_rank
        # Inlined refresh_urgent (runs per ACT-candidate serve).
        if self.refresh._ranks[rank].pending >= RefreshScheduler.MAX_POSTPONED:
            # The rank must drain for an overdue periodic refresh first.
            return False
        if cycle >= bank._next_act and self.device._rank_act_allowed(rank, cycle):
            self.device.activate(bank_id, target_row, cycle)
            self.stats.row_misses += 1
            request.row_hit = False
            if self.mechanism is not None:
                self.mechanism.on_activate(bank_id, target_row, cycle)
            return True
        return False

    def _preserve_open_row(
        self,
        bank_id: int,
        open_row: int,
        buckets: Dict[int, List[MemoryRequest]],
    ) -> bool:
        """True if the open row should be kept open for a pending row hit."""
        if self.scheduler.cap_reached(bank_id):
            return False
        bucket = buckets.get(bank_id)
        if not bucket:
            return False
        for request in bucket:
            if request.dram.row == open_row:
                return True
        return False

    def _complete_column(
        self,
        request: MemoryRequest,
        is_read: bool,
        cycle: int,
        completion: int,
        row_hit: bool,
    ) -> None:
        request.issued_cycle = cycle
        request.completion_cycle = completion
        request.row_hit = row_hit
        self._dequeue(request, is_read)
        self.scheduler.on_scheduled(request, row_hit)
        if row_hit:
            self.stats.row_hits += 1
        if is_read:
            self.stats.reads_served += 1
            self.stats.total_read_latency += completion - request.arrival_cycle
            self._inflight_reads.append(request)
        else:
            self.stats.writes_served += 1
            self._completed.append(request)

    def _retire_inflight(self, cycle: int) -> None:
        reads = self._inflight_reads
        # Read completions are issue cycle + a constant (tCL + tBL), so the
        # list is ordered by completion: checking the head suffices.
        if not reads or reads[0].completion_cycle > cycle:
            return
        still_waiting = []
        completed = self._completed
        for request in reads:
            if request.completion_cycle <= cycle:
                completed.append(request)
            else:
                still_waiting.append(request)
        self._inflight_reads = still_waiting

    # ------------------------------------------------------------------ #
    # Idle-time hints (the event horizon)
    # ------------------------------------------------------------------ #
    def _next_event_hint(self, cycle: int) -> int:
        """Earliest future cycle at which ``tick`` may do useful work.

        Every event source is covered, so the system simulator may advance
        time to exactly this cycle without changing simulated behaviour
        (hints may be conservative -- early -- but never late; the
        strict-tick determinism harness pins this).  Bank/rank readiness is
        read via the private ``_next_*`` attributes: this hint runs on every
        idle tick and the accessor-call overhead dominates otherwise.
        """
        best = FAR_FUTURE
        device = self.device
        banks = device.banks

        # Periodic refresh: a skip must never jump past a tREFI boundary,
        # otherwise REFs would silently be postponed beyond the DDR5 limit.
        due = self.refresh.next_due_cycle()
        if cycle < due < best:
            best = due

        # Back-off recovery deadline (mitigation recovery window).
        rfm_due = self._rfm_due_cycle
        if rfm_due is not None and not self._in_recovery and cycle < rfm_due < best:
            best = rfm_due

        if self._in_recovery:
            # Recovery needs every bank precharged, then an all-bank RFM.
            for bank in banks:
                ready = (
                    bank._next_pre if bank.state is BankState.ACTIVE else bank._next_act
                )
                if cycle < ready < best:
                    best = ready
        else:
            # The pending-rank bank scan is cached on the batch fast path:
            # its inputs only change on refresh accrual, an issued command
            # (both drop the cache) or an enqueue (which can only remove
            # scan events -- a too-early hint is a wasted wake, never a
            # behaviour change).  A cached value in the past is stale.
            scan = self._refresh_scan_hint
            if self._fast and scan is not None and scan > cycle:
                if scan < best:
                    best = scan
            else:
                scan = FAR_FUTURE
                pending_ranks = self.refresh.ranks_needing_refresh()
                if pending_ranks:
                    rank_demand = self._rank_demand
                    for rank in pending_ranks:
                        # A postponed REF is only actionable when urgent or
                        # when the rank is idle; otherwise the next refresh
                        # event is the accrual boundary already covered
                        # above.
                        if not self.refresh.refresh_urgent(rank) and rank_demand[rank]:
                            continue
                        for bank_id in device.banks_in_rank(rank):
                            bank = banks[bank_id]
                            ready = (
                                bank._next_pre
                                if bank.state is BankState.ACTIVE
                                else bank._next_act
                            )
                            if cycle < ready < scan:
                                scan = ready
                if self._fast:
                    self._refresh_scan_hint = scan
                if scan < best:
                    best = scan

        # Demand requests, bucketed per bank.  Both queues contribute: the
        # write queue may become the active queue as soon as it drains.
        # The section is cached: its inputs (bucket membership, bank/rank
        # readiness) only change on an enqueue or an issued command, both of
        # which drop the cache, so consecutive idle wakes (refresh
        # boundaries, core events, early hints) reuse the minimum instead of
        # rescanning every bucket.  A cached value at or below the current
        # cycle is stale by definition and forces a recompute.
        demand = self._demand_hint
        if demand is None or demand <= cycle:
            demand = self._demand_ready_cycle(cycle)
            self._demand_hint = demand
        if cycle < demand < best:
            best = demand

        mechanism = self.mechanism
        if mechanism is not None:
            if mechanism._pending:
                for bank_id in mechanism._pending:
                    bank = banks[bank_id]
                    ready = (
                        bank._next_pre
                        if bank.state is BankState.ACTIVE
                        else bank._next_act
                    )
                    if cycle < ready < best:
                        best = ready
            for bank_id in mechanism.rfm_pending_banks():
                bank = banks[bank_id]
                ready = (
                    bank._next_pre if bank.state is BankState.ACTIVE else bank._next_act
                )
                if cycle < ready < best:
                    best = ready

        reads = self._inflight_reads
        if reads:
            # Ordered by completion (issue cycle + constant): head is first.
            completion = reads[0].completion_cycle
            if cycle < completion < best:
                best = completion

        return best

    def _fold_bank_hint(self, bank_id: int) -> None:
        """Fold one served bank's new readiness into the cached demand hint.

        Called after a demand command issued on ``bank_id`` (fast kernels
        only).  The fold is deliberately conservative: for an open bank it
        takes the minimum over read, write and precharge release without
        checking which queues the bank actually sits in, and for a closed
        bank it ignores the rank-level ACT constraints -- a value at or
        below the bank's true next event keeps the cached minimum
        early-but-never-late (an early hint is a wasted wake; a late one
        would change behaviour).
        """
        hint = self._demand_hint
        if hint is None:
            return
        bank = self.device.banks[bank_id]
        if bank.open_row is None:
            ready = bank._next_act
        else:
            ready = bank._next_rd
            if bank._next_wr < ready:
                ready = bank._next_wr
            if bank._next_pre < ready:
                ready = bank._next_pre
        if ready < hint:
            self._demand_hint = ready

    def _bank_demand_ready(self, bank_id: int, is_read: bool) -> int:
        """Readiness of one queued bank (the per-bank body of
        :meth:`_demand_ready_cycle`), for incremental hint maintenance."""
        bank = self.device.banks[bank_id]
        if bank.open_row is None:
            ready = bank._next_act
            state = self.device._ranks[bank_id // self._banks_per_rank]
            rank_ready = state.last_act_cycle + self.timing.tRRD
            if rank_ready > ready:
                ready = rank_ready
            window = state.act_window
            if len(window) == window.maxlen:
                faw_ready = window[0] + self.timing.tFAW
                if faw_ready > ready:
                    ready = faw_ready
            return ready
        ready = bank._next_rd if is_read else bank._next_wr
        pre = bank._next_pre
        return ready if ready < pre else pre

    def _demand_ready_cycle(self, cycle: int) -> int:
        """Earliest strictly-future readiness event of any queued demand.

        Rank-level ACT readiness (tRRD / tFAW) is inlined: this scan runs on
        idle wakes and the accessor-call overhead dominates otherwise.  For
        open banks both the column-command and the precharge release are
        included without scanning the bucket for actual hits/conflicts --
        hints may be early (a wasted wake is a no-op tick), never late, and
        the per-request row scan this replaces dominated the idle-wake cost.
        """
        best = FAR_FUTURE
        device = self.device
        banks = device.banks
        banks_per_rank = self._banks_per_rank
        rank_states = device._ranks
        tRRD = self.timing.tRRD
        tFAW = self.timing.tFAW
        # Whether any queued bank is ready at or before ``cycle`` (excluded
        # from the strictly-future minimum): such a bank is being blocked by
        # something other than timing, so the batch fast path must not use
        # the hint to skip demand scans until the next recompute.
        ready_now = False
        for buckets, is_read in (
            (self._read_buckets, True),
            (self._write_buckets, False),
        ):
            for bank_id in buckets:
                bank = banks[bank_id]
                if bank.open_row is None:
                    ready = bank._next_act
                    state = rank_states[bank_id // banks_per_rank]
                    rank_ready = state.last_act_cycle + tRRD
                    if rank_ready > ready:
                        ready = rank_ready
                    window = state.act_window
                    if len(window) == window.maxlen:
                        faw_ready = window[0] + tFAW
                        if faw_ready > ready:
                            ready = faw_ready
                    if ready <= cycle:
                        ready_now = True
                    elif ready < best:
                        best = ready
                    continue
                ready = bank._next_rd if is_read else bank._next_wr
                if ready <= cycle:
                    ready_now = True
                elif ready < best:
                    best = ready
                ready = bank._next_pre
                if ready <= cycle:
                    ready_now = True
                elif ready < best:
                    best = ready
        self._demand_ready_now = ready_now
        return best

    # ------------------------------------------------------------------ #
    # Structure-of-arrays kernels (array bank backend)
    #
    # Every method below is the vectorized twin of the object-backend
    # implementation above: identical decisions, identical issue order,
    # identical hints -- pinned byte-for-byte by tests/test_bank_backends.py
    # -- with the per-bank Python loops folded into passes over the device's
    # BankArrayTiming plane.  The incremental caches (_demand_hint,
    # _refresh_scan_hint, _mech_scan_hint) are always maintained here: the
    # plane makes recomputes cheap and the fold bookkeeping makes them rare.
    # ------------------------------------------------------------------ #
    def _bind_array_kernels(self) -> None:
        """Rebind the readiness scans to the vectorized variants."""
        plane = self._plane
        n = plane.num_banks
        # The plane's memoryview twins, re-hoisted onto the controller: the
        # scalar kernels index these once per register access, and caching
        # them here turns every ``self._plane.next_*_mv`` double attribute
        # hop into a single one.  Safe because the plane identity is fixed
        # for the controller's lifetime (pooled planes are adopted at
        # device construction, before this binding runs) and ``reset()``
        # fills the arrays in place.
        self._mv_open_row = plane.open_row_mv
        self._mv_next_act = plane.next_act_mv
        self._mv_next_pre = plane.next_pre_mv
        self._mv_next_rd = plane.next_rd_mv
        self._mv_next_wr = plane.next_wr_mv
        # Scratch buffers (one allocation at construction, reused by every
        # vectorized scan; the plane never reallocates, so views stay valid).
        self._rank_ready = np.empty(n, dtype=np.int64)
        self._act_ready = np.empty(n, dtype=np.int64)
        self._stream_buf = np.empty(n, dtype=np.int64)
        self._m_read = np.empty(n, dtype=bool)
        self._m_write = np.empty(n, dtype=bool)
        self._m_any = np.empty(n, dtype=bool)
        self._m_closed = np.empty(n, dtype=bool)
        self._m_open = np.empty(n, dtype=bool)
        self._stream_mask = np.empty(n, dtype=bool)
        self._past_mask = np.empty(n, dtype=bool)
        self._act_ok = np.empty(n, dtype=bool)
        self._col_ok = np.empty(n, dtype=bool)
        self._pre_ok = np.empty(n, dtype=bool)
        self._rank_slices = self.device._rank_slices
        # The array kernels subsume the batch fast kernels: the caches they
        # rely on are maintained unconditionally here.  ``enqueue`` and
        # ``_dequeue`` need no twins -- the object versions already fold
        # through the rebound ``_bank_demand_ready``.
        self._fast = True
        self._service_demand = self._service_demand_array
        self._serve_request = self._serve_request_array
        self._service_refresh = self._service_refresh_array
        self._service_backoff = self._service_backoff_array
        self._service_prfm = self._service_prfm_array
        self._service_preventive = self._service_preventive_array
        self._next_event_hint = self._next_event_hint_array
        self._demand_ready_cycle = self._demand_ready_cycle_array
        self._fold_bank_hint = self._fold_bank_hint_array
        self._bank_demand_ready = self._bank_demand_ready_array

    def _fold_stream(
        self, mask: np.ndarray, values: np.ndarray, cycle: int
    ) -> Tuple[bool, int]:
        """Fold one masked event stream into ``(ready_now, future_min)``.

        ``ready_now`` is True when any masked value is at or below ``cycle``
        (those are excluded from the returned strictly-future minimum),
        mirroring the per-event handling of the scalar scan.
        """
        buf = self._stream_buf
        np.copyto(buf, FAR_FUTURE)
        np.copyto(buf, values, where=mask)
        lowest = int(buf.min())
        if lowest > cycle:
            return False, lowest
        past = self._past_mask
        np.less_equal(buf, cycle, out=past)
        buf[past] = FAR_FUTURE
        return True, int(buf.min())

    def _demand_ready_cycle_vector(self, cycle: int) -> int:
        """Whole-plane ``np.minimum``-reduction fold of the demand scan.

        The heavy-queue half of :meth:`_demand_ready_cycle_array`: four
        masked folds over the full plane replace the per-bucket walk once
        enough banks hold queued demand.  Identical minimum and
        ``_demand_ready_now`` semantics as the scalar walk.
        """
        plane = self._plane
        m_read = self._m_read
        m_write = self._m_write
        m_any = self._m_any
        closed = self._m_closed
        m_read.fill(False)
        m_read[list(self._read_buckets)] = True
        m_write.fill(False)
        m_write[list(self._write_buckets)] = True
        np.logical_or(m_read, m_write, out=m_any)
        np.less(plane.open_row, 0, out=closed)

        # Rank-level ACT readiness (tRRD / tFAW), broadcast per bank.
        rank_ready = self._rank_ready
        tRRD = self.timing.tRRD
        tFAW = self.timing.tFAW
        for rank, state in self.device._ranks.items():
            ready = state.last_act_cycle + tRRD
            window = state.act_window
            if len(window) == window.maxlen:
                faw_ready = window[0] + tFAW
                if faw_ready > ready:
                    ready = faw_ready
            rank_ready[self._rank_slices[rank]] = ready
        act_ready = self._act_ready
        np.maximum(plane.next_act, rank_ready, out=act_ready)

        stream = self._stream_mask
        m_open = self._m_open
        np.logical_and(closed, m_any, out=stream)
        now_act, best = self._fold_stream(stream, act_ready, cycle)
        np.logical_not(closed, out=m_open)
        np.logical_and(m_open, m_read, out=stream)
        now_rd, ready = self._fold_stream(stream, plane.next_rd, cycle)
        if ready < best:
            best = ready
        np.logical_and(m_open, m_write, out=stream)
        now_wr, ready = self._fold_stream(stream, plane.next_wr, cycle)
        if ready < best:
            best = ready
        np.logical_and(m_open, m_any, out=stream)
        now_pre, ready = self._fold_stream(stream, plane.next_pre, cycle)
        if ready < best:
            best = ready
        self._demand_ready_now = now_act or now_rd or now_wr or now_pre
        return best

    def _demand_ready_cycle_array(self, cycle: int) -> int:
        """Array twin of :meth:`_demand_ready_cycle` (adaptive dispatch).

        The common case walks only the queued buckets, reading the plane's
        memoryview twins in place of bank attributes -- same event streams,
        same ``_demand_ready_now`` semantics as the object backend's scan.
        Once enough banks hold queued demand, the walk escalates to the
        whole-plane vectorized fold (:meth:`_demand_ready_cycle_vector`);
        below the threshold, ufunc dispatch overhead exceeds the loop it
        replaces.  Both paths compute identical results.
        """
        if (
            len(self._read_buckets) + len(self._write_buckets)
            > _VECTOR_SCAN_MIN_BANKS
        ):
            return self._demand_ready_cycle_vector(cycle)
        best = FAR_FUTURE
        next_act = self._mv_next_act
        next_pre = self._mv_next_pre
        open_row = self._mv_open_row
        banks_per_rank = self._banks_per_rank
        rank_states = self.device._ranks
        tRRD = self.timing.tRRD
        tFAW = self.timing.tFAW
        ready_now = False
        for buckets, col in (
            (self._read_buckets, self._mv_next_rd),
            (self._write_buckets, self._mv_next_wr),
        ):
            for bank_id in buckets:
                if open_row[bank_id] < 0:
                    ready = next_act[bank_id]
                    state = rank_states[bank_id // banks_per_rank]
                    rank_ready = state.last_act_cycle + tRRD
                    if rank_ready > ready:
                        ready = rank_ready
                    window = state.act_window
                    if len(window) == window.maxlen:
                        faw_ready = window[0] + tFAW
                        if faw_ready > ready:
                            ready = faw_ready
                    if ready <= cycle:
                        ready_now = True
                    elif ready < best:
                        best = ready
                    continue
                ready = col[bank_id]
                if ready <= cycle:
                    ready_now = True
                elif ready < best:
                    best = ready
                ready = next_pre[bank_id]
                if ready <= cycle:
                    ready_now = True
                elif ready < best:
                    best = ready
        self._demand_ready_now = ready_now
        return best

    def _bank_demand_ready_array(self, bank_id: int, is_read: bool) -> int:
        """Array twin of :meth:`_bank_demand_ready` (plain-int result)."""
        if self._mv_open_row[bank_id] < 0:
            ready = self._mv_next_act[bank_id]
            state = self.device._ranks[bank_id // self._banks_per_rank]
            rank_ready = state.last_act_cycle + self.timing.tRRD
            if rank_ready > ready:
                ready = rank_ready
            window = state.act_window
            if len(window) == window.maxlen:
                faw_ready = window[0] + self.timing.tFAW
                if faw_ready > ready:
                    ready = faw_ready
            return ready
        col = (
            self._mv_next_rd[bank_id] if is_read else self._mv_next_wr[bank_id]
        )
        pre = self._mv_next_pre[bank_id]
        return col if col < pre else pre

    def _fold_bank_hint_array(self, bank_id: int) -> None:
        """Array twin of :meth:`_fold_bank_hint`."""
        hint = self._demand_hint
        if hint is None:
            return
        if self._mv_open_row[bank_id] < 0:
            ready = self._mv_next_act[bank_id]
        else:
            ready = self._mv_next_rd[bank_id]
            wr = self._mv_next_wr[bank_id]
            if wr < ready:
                ready = wr
            pre = self._mv_next_pre[bank_id]
            if pre < ready:
                ready = pre
        if ready < hint:
            self._demand_hint = ready

    def _service_demand_array(self, cycle: int) -> bool:
        """Array twin of :meth:`_service_demand`.

        The FR-FCFS pick consults the plane's open-row array directly; the
        first-ready fallback pre-filters candidates through per-bank ready
        masks computed in three vectorized comparisons.
        """
        is_read = self._active_queue_is_reads()
        # The cached hint proves no queued bank has a legal command at this
        # cycle (see _service_demand); skip the scan outright.
        hint = self._demand_hint
        if hint is not None and cycle < hint and not self._demand_ready_now:
            return False
        if is_read:
            if not self._read_count:
                return False
            buckets = self._read_buckets
        else:
            buckets = self._write_buckets
        open_rows = self._mv_open_row
        request = self.scheduler.choose_from_buckets_array(buckets, open_rows)
        if request is not None and self._serve_request_array(
            request, is_read, buckets, cycle
        ):
            self._fold_bank_hint_array(request.bank_id)
            return True
        # First-ready fallback, same candidate set as the scalar version
        # (bucket head + oldest opposite-classification request per bank).
        # Busy queues pre-filter through per-bank ready masks computed in
        # three vectorized comparisons; light queues read the plane slots
        # directly (the adaptive-dispatch rationale of
        # _demand_ready_cycle_array applies identically here).
        col_mv = self._mv_next_rd if is_read else self._mv_next_wr
        act_mv = self._mv_next_act
        pre_mv = self._mv_next_pre
        vectorized = len(buckets) > _VECTOR_SCAN_MIN_BANKS
        if vectorized:
            plane = self._plane
            act_ok = self._act_ok
            col_ok = self._col_ok
            pre_ok = self._pre_ok
            np.less_equal(plane.next_act, cycle, out=act_ok)
            np.less_equal(
                plane.next_rd if is_read else plane.next_wr, cycle, out=col_ok
            )
            np.less_equal(plane.next_pre, cycle, out=pre_ok)
        candidates: List[MemoryRequest] = []
        for bank_id, bucket in buckets.items():
            open_row = open_rows[bank_id]
            head = bucket[0]
            if open_row < 0:
                if act_ok[bank_id] if vectorized else cycle >= act_mv[bank_id]:
                    candidates.append(head)
                continue
            head_is_hit = head.dram.row == open_row
            second: Optional[MemoryRequest] = None
            for r in bucket:
                if (r.dram.row == open_row) != head_is_hit:
                    second = r
                    break
            if vectorized:
                hit_ready = bool(col_ok[bank_id])
                pre_ready = bool(pre_ok[bank_id])
            else:
                hit_ready = cycle >= col_mv[bank_id]
                pre_ready = cycle >= pre_mv[bank_id]
            if head_is_hit:
                if hit_ready:
                    candidates.append(head)
                if second is not None and pre_ready:
                    candidates.append(second)
            else:
                if pre_ready:
                    candidates.append(head)
                if second is not None and hit_ready:
                    candidates.append(second)
        candidates.sort(key=_BY_REQUEST_ID)
        for request in candidates:
            if self._serve_request_array(request, is_read, buckets, cycle):
                self._fold_bank_hint_array(request.bank_id)
                return True
        return False

    def _serve_request_array(
        self,
        request: MemoryRequest,
        is_read: bool,
        buckets: Dict[int, List[MemoryRequest]],
        cycle: int,
    ) -> bool:
        """Array twin of :meth:`_serve_request`."""
        bank_id = request.bank_id
        open_row = self._mv_open_row[bank_id]
        target_row = request.dram.row

        if open_row >= 0:
            if open_row == target_row:
                hit = request.row_hit if request.row_hit is not None else True
                if is_read:
                    if cycle >= self._mv_next_rd[bank_id]:
                        ready = self.device.read(bank_id, cycle)
                        self._complete_column(
                            request, is_read, cycle, ready, row_hit=hit
                        )
                        return True
                elif cycle >= self._mv_next_wr[bank_id]:
                    done = self.device.write(bank_id, cycle)
                    self._complete_column(request, is_read, cycle, done, row_hit=hit)
                    return True
                return False
            if self._preserve_open_row(bank_id, open_row, buckets):
                return False
            if cycle >= self._mv_next_pre[bank_id]:
                self._precharge(bank_id, cycle)
                self.stats.row_conflicts += 1
                request.row_hit = False
                self.scheduler.on_scheduled(request, was_row_hit=False)
                return True
            return False

        rank = bank_id // self._banks_per_rank
        # Cached urgent set (runs per ACT-candidate serve; almost always
        # the shared empty tuple, so the probe is one containment check).
        if rank in self.refresh.urgent_ranks():
            return False
        if cycle >= self._mv_next_act[bank_id] and self.device._rank_act_allowed(
            rank, cycle
        ):
            self.device.activate(bank_id, target_row, cycle)
            self.stats.row_misses += 1
            request.row_hit = False
            if self.mechanism is not None:
                self.mechanism.on_activate(bank_id, target_row, cycle)
            return True
        return False

    def _service_refresh_array(self, cycle: int) -> bool:
        """Array twin of :meth:`_service_refresh` (plane reads, vector REF)."""
        pending_ranks = self.refresh.ranks_needing_refresh()
        device = self.device
        open_row = self._mv_open_row
        next_pre = self._mv_next_pre
        urgent_ranks = self.refresh.urgent_ranks()
        for rank in pending_ranks:
            urgent = rank in urgent_ranks
            if not urgent:
                if self._rank_demand[rank]:
                    continue
                if device.can_refresh(rank, cycle):
                    device.refresh(rank, cycle)
                    self.refresh.refresh_issued(rank)
                    self.stats.refreshes += 1
                    return True
                continue
            # Urgent: close the rank's open banks (first ready one), then
            # refresh.  Same visit order as the scalar scan.
            any_open = False
            for bank_id in device.banks_in_rank(rank):
                if open_row[bank_id] >= 0:
                    any_open = True
                    if cycle >= next_pre[bank_id]:
                        self._precharge(bank_id, cycle)
                        return True
            if any_open:
                continue
            if device.can_refresh(rank, cycle):
                device.refresh(rank, cycle)
                self.refresh.refresh_issued(rank)
                self.stats.refreshes += 1
                return True
        return False

    def _service_backoff_array(self, cycle: int) -> bool:
        """Array twin of :meth:`_service_backoff`."""
        if not self._in_recovery:
            if self._rfm_due_cycle is None or cycle < self._rfm_due_cycle:
                return False
            self._in_recovery = True

        open_row = self._mv_open_row
        all_banks = self._all_banks
        # All banks must be precharged before an all-bank RFM can be issued;
        # stop at the first open bank in id order, like the object scan.
        for bank_id in all_banks:
            if open_row[bank_id] >= 0:
                if cycle >= self._mv_next_pre[bank_id]:
                    self._precharge(bank_id, cycle)
                    return True
                return False
        if not self.device.can_rfm(all_banks, cycle):
            return False
        refreshed = self.device.rfm(all_banks, cycle)
        self.stats.rfms += 1
        self.stats.preventive_refresh_rows += refreshed
        if not self.device.wants_more_rfm():
            self._in_recovery = False
            self._rfm_due_cycle = None
        return True

    def _service_prfm_array(self, cycle: int) -> bool:
        """Array twin of :meth:`_service_prfm`."""
        mechanism = self.mechanism
        if mechanism is None:
            return False
        pending = mechanism.rfm_pending_banks()
        if not pending:
            return False
        open_row = self._mv_open_row
        for bank_id in pending:
            if open_row[bank_id] >= 0:
                if cycle >= self._mv_next_pre[bank_id]:
                    self._precharge(bank_id, cycle)
                    return True
                continue
            if cycle >= self._mv_next_act[bank_id]:
                refreshed = self.device.rfm([bank_id], cycle)
                mechanism.acknowledge_rfm(
                    bank_id,
                    cycle,
                    on_die_refreshed=(
                        refreshed if self.device.mitigation is not None else None
                    ),
                )
                self.stats.rfms += 1
                self.stats.preventive_refresh_rows += mechanism.victim_rows_per_aggressor
                return True
        return False

    def _service_preventive_array(self, cycle: int) -> bool:
        """Array twin of :meth:`_service_preventive`."""
        mechanism = self.mechanism
        if mechanism is None or not mechanism.has_pending_refreshes():
            return False
        open_row = self._mv_open_row
        for bank_id in mechanism._pending:
            if open_row[bank_id] >= 0:
                if cycle >= self._mv_next_pre[bank_id]:
                    self._precharge(bank_id, cycle)
                    return True
                continue
            if cycle >= self._mv_next_act[bank_id]:
                refresh = mechanism.pop_refresh(bank_id, cycle)
                if refresh is None:
                    continue
                self.device.victim_refresh(bank_id, refresh.num_rows, cycle)
                self.stats.preventive_refresh_rows += refresh.num_rows
                return True
        return False

    def _next_event_hint_array(self, cycle: int) -> int:
        """Array twin of :meth:`_next_event_hint`.

        The bank-readiness scans index the plane's memoryview twins (plain
        Python ints, no ndarray scalar boxing); the refresh-pending scan is
        cached as on the object fast path, and the mechanism-pending scan is
        additionally cached (see ``_mech_scan_hint`` in ``__init__``).
        Every section preserves the early-never-late contract of the scalar
        hint.
        """
        best = FAR_FUTURE
        open_row = self._mv_open_row
        next_pre = self._mv_next_pre
        next_act = self._mv_next_act

        due = self.refresh.next_due_cycle()
        if cycle < due < best:
            best = due

        rfm_due = self._rfm_due_cycle
        if rfm_due is not None and not self._in_recovery and cycle < rfm_due < best:
            best = rfm_due

        if self._in_recovery:
            # Recovery needs every bank precharged, then an all-bank RFM.
            for bank_id in self._all_banks:
                ready = (
                    next_pre[bank_id]
                    if open_row[bank_id] >= 0
                    else next_act[bank_id]
                )
                if cycle < ready < best:
                    best = ready
        else:
            scan = self._refresh_scan_hint
            if scan is not None and scan > cycle:
                if scan < best:
                    best = scan
            else:
                scan = FAR_FUTURE
                pending_ranks = self.refresh.ranks_needing_refresh()
                if pending_ranks:
                    rank_demand = self._rank_demand
                    urgent_ranks = self.refresh.urgent_ranks()
                    device = self.device
                    for rank in pending_ranks:
                        if rank not in urgent_ranks and rank_demand[rank]:
                            continue
                        for bank_id in device.banks_in_rank(rank):
                            ready = (
                                next_pre[bank_id]
                                if open_row[bank_id] >= 0
                                else next_act[bank_id]
                            )
                            if cycle < ready < scan:
                                scan = ready
                self._refresh_scan_hint = scan
                if scan < best:
                    best = scan

        demand = self._demand_hint
        if demand is None or demand <= cycle:
            demand = self._demand_ready_cycle_array(cycle)
            self._demand_hint = demand
        if cycle < demand < best:
            best = demand

        mechanism = self.mechanism
        if mechanism is not None:
            mech = self._mech_scan_hint
            if mech is None or mech <= cycle:
                mech = FAR_FUTURE
                for bank_id in mechanism._pending:
                    ready = (
                        next_pre[bank_id]
                        if open_row[bank_id] >= 0
                        else next_act[bank_id]
                    )
                    if cycle < ready < mech:
                        mech = ready
                for bank_id in mechanism.rfm_pending_banks():
                    ready = (
                        next_pre[bank_id]
                        if open_row[bank_id] >= 0
                        else next_act[bank_id]
                    )
                    if cycle < ready < mech:
                        mech = ready
                self._mech_scan_hint = mech
            if mech < best:
                best = mech

        reads = self._inflight_reads
        if reads:
            completion = reads[0].completion_cycle
            if cycle < completion < best:
                best = completion

        return best
