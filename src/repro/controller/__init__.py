"""Memory controller substrate.

Implements the request queues, FR-FCFS+Cap scheduling policy, DRAM address
mappings, periodic refresh management, the RFM / back-off protocol handling,
and the hosting of controller-side mitigation mechanisms -- i.e. everything
Table 2 of the paper configures on the memory-controller side.  Multi-channel
systems put a :class:`~repro.controller.router.ChannelRouter` in front of one
:class:`MemoryController` per channel.
"""

from repro.controller.request import MemoryRequest, RequestType
from repro.controller.address_mapping import (
    MAPPING_NAMES,
    AddressMapping,
    abacus_mapping,
    mop_mapping,
    robarracoch_mapping,
    row_interleaved,
    mapping_by_name,
)
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.controller.controller import MemoryController
from repro.controller.router import ChannelRouter

__all__ = [
    "MemoryRequest",
    "RequestType",
    "AddressMapping",
    "MAPPING_NAMES",
    "mop_mapping",
    "robarracoch_mapping",
    "abacus_mapping",
    "row_interleaved",
    "mapping_by_name",
    "FrFcfsCapScheduler",
    "MemoryController",
    "ChannelRouter",
]
