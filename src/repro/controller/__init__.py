"""Memory controller substrate.

Implements the request queues, FR-FCFS+Cap scheduling policy, DRAM address
mappings, periodic refresh management, the RFM / back-off protocol handling,
and the hosting of controller-side mitigation mechanisms -- i.e. everything
Table 2 of the paper configures on the memory-controller side.
"""

from repro.controller.request import MemoryRequest, RequestType
from repro.controller.address_mapping import (
    AddressMapping,
    abacus_mapping,
    mop_mapping,
    robarracoch_mapping,
    mapping_by_name,
)
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.controller.controller import MemoryController

__all__ = [
    "MemoryRequest",
    "RequestType",
    "AddressMapping",
    "mop_mapping",
    "robarracoch_mapping",
    "abacus_mapping",
    "mapping_by_name",
    "FrFcfsCapScheduler",
    "MemoryController",
]
