"""FR-FCFS + Cap memory request scheduler.

The paper's memory controller uses the First-Ready, First-Come-First-Served
policy with a *Cap on Column-Over-Row Reordering* of four (Table 2):
row-buffer hits are prioritised over older row-buffer conflicts, but at most
``cap`` consecutive hits may bypass an older conflicting request to the same
bank, which bounds the starvation that an open-row-friendly stream could
otherwise inflict (and that a memory performance attack exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.controller.request import MemoryRequest
from repro.dram.device import DramDevice


class FrFcfsCapScheduler:
    """FR-FCFS with a cap on column-over-row reordering."""

    def __init__(self, cap: int = 4) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = cap
        #: Consecutive row hits scheduled over an older conflict, per bank.
        self._hit_streak: Dict[int, int] = {}

    def reset(self) -> None:
        """Clear all per-bank streak state."""
        self._hit_streak.clear()

    def choose(
        self, queue: Sequence[MemoryRequest], device: DramDevice
    ) -> Optional[MemoryRequest]:
        """Choose the next request to service from ``queue``.

        The choice only considers row-buffer state (first-ready); the caller
        remains responsible for checking command timing legality before
        issuing and for calling :meth:`on_scheduled` when a request is
        finally serviced.
        """
        if not queue:
            return None

        oldest: Optional[MemoryRequest] = None
        best_hit: Optional[MemoryRequest] = None
        for request in queue:
            if oldest is None or request.request_id < oldest.request_id:
                oldest = request
            if device.open_row(request.bank_id) == request.dram.row:
                if best_hit is None or request.request_id < best_hit.request_id:
                    best_hit = request

        if best_hit is None:
            return oldest
        if best_hit is oldest:
            return best_hit

        # There is an older request; only let the hit bypass it if the hit's
        # bank has not exhausted its reordering cap *and* the older request
        # targets the same bank (otherwise there is no reordering conflict).
        bank = best_hit.bank_id
        older_conflict_same_bank = any(
            r.request_id < best_hit.request_id and r.bank_id == bank for r in queue
        )
        if older_conflict_same_bank and self._hit_streak.get(bank, 0) >= self.cap:
            return oldest
        return best_hit

    def hit_streak(self, bank_id: int) -> int:
        """Consecutive row hits most recently scheduled to ``bank_id``."""
        return self._hit_streak.get(bank_id, 0)

    def cap_reached(self, bank_id: int) -> bool:
        """True if the bank exhausted its column-over-row reordering budget."""
        return self.hit_streak(bank_id) >= self.cap

    def on_scheduled(self, request: MemoryRequest, was_row_hit: bool) -> None:
        """Update the per-bank streak after a request is serviced."""
        bank = request.bank_id
        if was_row_hit:
            self._hit_streak[bank] = self._hit_streak.get(bank, 0) + 1
        else:
            self._hit_streak[bank] = 0
