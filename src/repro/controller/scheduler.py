"""FR-FCFS + Cap memory request scheduler.

The paper's memory controller uses the First-Ready, First-Come-First-Served
policy with a *Cap on Column-Over-Row Reordering* of four (Table 2):
row-buffer hits are prioritised over older row-buffer conflicts, but at most
``cap`` consecutive hits may bypass an older conflicting request to the same
bank, which bounds the starvation that an open-row-friendly stream could
otherwise inflict (and that a memory performance attack exploits).

The streak that enforces the cap belongs to the currently *open row*: when a
row is closed (demand precharge, periodic refresh, RFM, back-off recovery)
the reordering budget of the bank resets -- the controller reports closures
via :meth:`FrFcfsCapScheduler.on_row_closed`.

The memory controller keeps its request queues bucketed per bank
(:class:`~repro.controller.controller.MemoryController`), so the scheduler
offers :meth:`choose_from_buckets`, which picks the same request FR-FCFS+Cap
would pick from a flat queue scan but only inspects per-bank bucket heads and
the open-row hits of open banks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.controller.request import MemoryRequest
from repro.dram.device import DramDevice


class FrFcfsCapScheduler:
    """FR-FCFS with a cap on column-over-row reordering."""

    def __init__(self, cap: int = 4) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = cap
        #: Consecutive row hits scheduled over an older conflict, per bank.
        self._hit_streak: Dict[int, int] = {}

    def reset(self) -> None:
        """Clear all per-bank streak state."""
        self._hit_streak.clear()

    def choose(
        self, queue: Sequence[MemoryRequest], device: DramDevice
    ) -> Optional[MemoryRequest]:
        """Choose the next request to service from a flat ``queue``.

        The choice only considers row-buffer state (first-ready); the caller
        remains responsible for checking command timing legality before
        issuing and for calling :meth:`on_scheduled` when a request is
        finally serviced.
        """
        if not queue:
            return None

        oldest: Optional[MemoryRequest] = None
        best_hit: Optional[MemoryRequest] = None
        for request in queue:
            if oldest is None or request.request_id < oldest.request_id:
                oldest = request
            if device.open_row(request.bank_id) == request.dram.row:
                if best_hit is None or request.request_id < best_hit.request_id:
                    best_hit = request

        return self._arbitrate(oldest, best_hit, queue)

    def choose_from_buckets(
        self,
        buckets: Dict[int, List[MemoryRequest]],
        device: DramDevice,
    ) -> Optional[MemoryRequest]:
        """Equivalent of :meth:`choose` over per-bank FIFO buckets.

        ``buckets`` maps a flat bank id to the bank's queued requests in
        arrival (= request_id) order; empty buckets must have been removed.
        Picks exactly the request a flat FR-FCFS+Cap scan would pick.
        """
        if not buckets:
            return None

        banks = device.banks
        oldest: Optional[MemoryRequest] = None
        best_hit: Optional[MemoryRequest] = None
        for bank_id, bucket in buckets.items():
            head = bucket[0]
            if oldest is None or head.request_id < oldest.request_id:
                oldest = head
            open_row = banks[bank_id].open_row
            if open_row is None:
                continue
            for request in bucket:
                if request.dram.row == open_row:
                    if best_hit is None or request.request_id < best_hit.request_id:
                        best_hit = request
                    break  # bucket is FIFO: the first hit is the oldest hit
        return self._arbitrate_bucketed(oldest, best_hit, buckets)

    def choose_from_buckets_array(
        self,
        buckets: Dict[int, List[MemoryRequest]],
        open_rows,
    ) -> Optional[MemoryRequest]:
        """Array-backend twin of :meth:`choose_from_buckets`.

        ``open_rows`` is the timing plane's per-bank open-row memoryview
        (``-1`` = precharged); indexing it yields plain ints without the
        bank-view property hops of the object path.  Picks exactly the same
        request.
        """
        if not buckets:
            return None

        oldest: Optional[MemoryRequest] = None
        best_hit: Optional[MemoryRequest] = None
        for bank_id, bucket in buckets.items():
            head = bucket[0]
            if oldest is None or head.request_id < oldest.request_id:
                oldest = head
            open_row = open_rows[bank_id]
            if open_row < 0:
                continue
            for request in bucket:
                if request.dram.row == open_row:
                    if best_hit is None or request.request_id < best_hit.request_id:
                        best_hit = request
                    break  # bucket is FIFO: the first hit is the oldest hit
        return self._arbitrate_bucketed(oldest, best_hit, buckets)

    def _arbitrate(
        self,
        oldest: Optional[MemoryRequest],
        best_hit: Optional[MemoryRequest],
        queue: Sequence[MemoryRequest],
    ) -> Optional[MemoryRequest]:
        if best_hit is None:
            return oldest
        if best_hit is oldest:
            return best_hit
        # There is an older request; only let the hit bypass it if the hit's
        # bank has not exhausted its reordering cap *and* the older request
        # targets the same bank (otherwise there is no reordering conflict).
        bank = best_hit.bank_id
        older_conflict_same_bank = False
        for r in queue:
            if r.request_id < best_hit.request_id and r.bank_id == bank:
                older_conflict_same_bank = True
                break
        if older_conflict_same_bank and self._hit_streak.get(bank, 0) >= self.cap:
            return oldest
        return best_hit

    def _arbitrate_bucketed(
        self,
        oldest: Optional[MemoryRequest],
        best_hit: Optional[MemoryRequest],
        buckets: Dict[int, List[MemoryRequest]],
    ) -> Optional[MemoryRequest]:
        if best_hit is None:
            return oldest
        if best_hit is oldest:
            return best_hit
        bank = best_hit.bank_id
        # The bank's bucket is FIFO, so an older same-bank request exists
        # exactly when the bucket head is older than the hit.
        older_conflict_same_bank = (
            buckets[bank][0].request_id < best_hit.request_id
        )
        if older_conflict_same_bank and self._hit_streak.get(bank, 0) >= self.cap:
            return oldest
        return best_hit

    def hit_streak(self, bank_id: int) -> int:
        """Consecutive row hits most recently scheduled to ``bank_id``."""
        return self._hit_streak.get(bank_id, 0)

    def cap_reached(self, bank_id: int) -> bool:
        """True if the bank exhausted its column-over-row reordering budget."""
        return self.hit_streak(bank_id) >= self.cap

    def on_scheduled(self, request: MemoryRequest, was_row_hit: bool) -> None:
        """Update the per-bank streak after a request is serviced."""
        bank = request.bank_id
        if was_row_hit:
            self._hit_streak[bank] = self._hit_streak.get(bank, 0) + 1
        else:
            self._hit_streak[bank] = 0

    def on_row_closed(self, bank_id: int) -> None:
        """The bank's open row was closed (PRE / REF / RFM / recovery).

        The column-over-row reordering budget is a property of the open row:
        a streak accumulated against a row that no longer exists must not
        throttle the first hits to a freshly opened row.
        """
        self._hit_streak.pop(bank_id, None)
