"""Channel router: the fan-out point of the multi-channel memory system.

:class:`ChannelRouter` sits between the LLC miss path and the per-channel
:class:`~repro.controller.controller.MemoryController` instances.  It decodes
each demand request's physical address exactly once (the mapping's ``channel``
field selects the target channel), stamps the decoded coordinates onto the
request, and forwards it to the owning controller.  Channels are fully
independent DDR5 channels: each has its own command bus, so every channel may
issue one command per DRAM cycle -- this is where the aggregate-bandwidth
scaling of a multi-channel system comes from.

For a single-channel system the router degenerates to a thin pass-through
around the one controller, preserving the seed simulator's behaviour
bit-for-bit (the golden regression tests pin this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.controller.address_mapping import AddressMapping
from repro.controller.controller import FAR_FUTURE, MemoryController
from repro.controller.request import MemoryRequest

#: Shared immutable "nothing completed" result (callers only iterate it).
_NO_REQUESTS: List[MemoryRequest] = []


class ChannelRouter:
    """Routes demand requests to per-channel memory controllers."""

    def __init__(
        self,
        mapping: AddressMapping,
        controllers: Sequence[MemoryController],
        decode_cache: Optional[Dict[int, Tuple]] = None,
    ) -> None:
        if not controllers:
            raise ValueError("at least one memory controller is required")
        self.mapping = mapping
        self.controllers: List[MemoryController] = list(controllers)
        # Optional shared address -> (DramAddress, flat_bank) table.  The
        # batch engine pre-decodes every trace line once per group (the
        # mapping is pure bit shuffling, so decoded coordinates are reusable
        # across configs); the dict doubles as a memo for any address the
        # precomputation missed.
        self._decode_cache = decode_cache
        expected = mapping.organization.channels
        if len(self.controllers) != expected:
            raise ValueError(
                f"mapping addresses {expected} channels but "
                f"{len(self.controllers)} controllers were provided"
            )
        # Per-channel tick gating: a sleeping channel's state can only change
        # through its own tick or a new enqueue, so between those its wake
        # hint stays valid and the whole per-channel Python dispatch can be
        # skipped.  ``_wake[i]`` is the next cycle channel i must be ticked;
        # ``_dirty[i]`` forces a tick after an enqueue landed on it.
        self._wake: List[int] = [-1] * len(self.controllers)
        self._dirty: List[bool] = [True] * len(self.controllers)
        if len(self.controllers) == 1:
            # Single-channel fast path: the per-channel loop collapses to a
            # direct dispatch on the one controller (the seed topology, and
            # the hottest configuration in the benchmark suite).
            self.tick = self._tick_single  # type: ignore[method-assign]
            self.drain_completed = (  # type: ignore[method-assign]
                self.controllers[0].drain_completed
            )

    @property
    def num_channels(self) -> int:
        return len(self.controllers)

    # ------------------------------------------------------------------ #
    # LLC-miss-path interface (same surface the cores already use)
    # ------------------------------------------------------------------ #
    def enqueue(self, request: MemoryRequest) -> bool:
        """Decode, route and enqueue a demand request; False if the target
        channel's queue is full."""
        if request.dram is None:
            cache = self._decode_cache
            if cache is not None:
                entry = cache.get(request.address)
                if entry is None:
                    dram = self.mapping.decode(request.address)
                    entry = (dram, dram.flat_bank(self.mapping.organization))
                    cache[request.address] = entry
                request.dram, request.bank_id = entry
            else:
                request.dram = self.mapping.decode(request.address)
                request.bank_id = request.dram.flat_bank(self.mapping.organization)
        channel = request.dram.channel
        accepted = self.controllers[channel].enqueue(request)
        if accepted:
            self._dirty[channel] = True
        return accepted

    def drain_completed(self) -> List[MemoryRequest]:
        """Completed requests of every channel since the last call."""
        completed: Optional[List[MemoryRequest]] = None
        for controller in self.controllers:
            # Direct read of the controller's documented hot-path attribute:
            # skips the swap-and-allocate drain for idle channels.
            if controller._completed:
                drained = controller.drain_completed()
                if completed is None:
                    completed = drained
                else:
                    completed.extend(drained)
        return completed if completed is not None else _NO_REQUESTS

    def pending_requests(self) -> int:
        """Demand requests still queued or in flight on any channel."""
        return sum(c.pending_requests() for c in self.controllers)

    # ------------------------------------------------------------------ #
    # Main per-cycle entry point
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int, force: bool = False) -> Tuple[bool, int]:
        """Tick every channel that can make progress at ``cycle``.

        Each channel owns an independent command bus, so up to one command
        per channel issues per cycle.  Channels that are neither dirty (a new
        request arrived) nor at their own wake cycle are skipped entirely --
        their previous hint is still valid.  ``force`` disables the gating
        (the strict-tick reference path must not depend on hint precision).
        Returns ``(any_issued, next_hint)`` where ``next_hint`` is the
        earliest wake cycle across channels (only meaningful when nothing
        issued anywhere).
        """
        issued_any = False
        hint = FAR_FUTURE
        wake = self._wake
        dirty = self._dirty
        for index, controller in enumerate(self.controllers):
            if force or dirty[index] or cycle >= wake[index]:
                issued, channel_hint = controller.tick(cycle)
                dirty[index] = False
                wake[index] = channel_hint  # == cycle + 1 when issued
                if issued:
                    issued_any = True
                    continue
            if wake[index] < hint:
                hint = wake[index]
        return issued_any, (cycle + 1 if issued_any else hint)

    def _tick_single(self, cycle: int, force: bool = False) -> Tuple[bool, int]:
        """Loop-free :meth:`tick` for the one-channel topology."""
        wake = self._wake
        if force or self._dirty[0] or cycle >= wake[0]:
            issued, hint = self.controllers[0].tick(cycle)
            self._dirty[0] = False
            wake[0] = hint
            if issued:
                return True, cycle + 1
            return False, hint
        return False, wake[0]
