"""Multi-programmed workload mixes.

The paper builds 60 four-core mixes: 10 each of the HHHH, MMMM, LLLL, HHMM,
MMLL and LLHH combinations of High / Medium / Low memory-intensity
applications (§6).  This module reproduces that construction deterministically
from the synthetic application pool, and turns a mix into per-core traces
whose address spaces do not overlap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cpu.trace import Trace
from repro.dram.organization import DramOrganization, PAPER_ORGANIZATION
from repro.workloads.synthetic import app_names, generate_trace


#: The six mix types of the paper, in presentation order (Fig. 9).
MIX_TYPES: tuple[str, ...] = ("HHHH", "HHMM", "HHLL", "MMMM", "MMLL", "LLLL")


@dataclass(frozen=True)
class WorkloadMix:
    """A named multi-programmed workload."""

    name: str
    mix_type: str
    applications: tuple

    @property
    def num_cores(self) -> int:
        return len(self.applications)


def workload_mixes(
    mixes_per_type: int = 10,
    mix_types: Sequence[str] = MIX_TYPES,
    seed: int = 42,
) -> List[WorkloadMix]:
    """Build the multi-programmed mixes (60 by default, as in the paper)."""
    if mixes_per_type <= 0:
        raise ValueError("mixes_per_type must be positive")
    rng = random.Random(seed)
    pools: Dict[str, List[str]] = {
        "H": app_names("H"),
        "M": app_names("M"),
        "L": app_names("L"),
    }
    mixes: List[WorkloadMix] = []
    for mix_type in mix_types:
        for index in range(mixes_per_type):
            apps = tuple(rng.choice(pools[letter]) for letter in mix_type)
            mixes.append(
                WorkloadMix(
                    name=f"{mix_type.lower()}_{index:02d}",
                    mix_type=mix_type,
                    applications=apps,
                )
            )
    return mixes


def build_mix_traces(
    mix: WorkloadMix | Sequence[str],
    accesses_per_core: int = 20_000,
    organization: DramOrganization = PAPER_ORGANIZATION,
    seed: int = 0,
) -> List[Trace]:
    """Generate one trace per core for a mix.

    Each core receives a disjoint slice of the physical address space so that
    multi-programmed mixes do not accidentally share cache lines or DRAM rows.
    """
    if isinstance(mix, WorkloadMix):
        applications = mix.applications
    else:
        applications = tuple(mix)
    if not applications:
        raise ValueError("a mix needs at least one application")
    region_bytes = organization.capacity_bytes // max(4, len(applications))
    traces = []
    for slot, app in enumerate(applications):
        traces.append(
            generate_trace(
                app,
                num_accesses=accesses_per_core,
                seed=seed + slot,
                base_address=slot * region_bytes,
            )
        )
    return traces
