"""Synthetic benign workloads.

The paper evaluates 57 single-core applications from SPEC CPU2006,
SPEC CPU2017, TPC, MediaBench and YCSB, grouped into High / Medium / Low
memory intensity by their row-buffer misses per kilo-instruction (RBMPKI).
The original memory traces are not redistributable, so this module
synthesises deterministic traces whose first-order memory behaviour --
memory intensity, working-set size (and therefore LLC hit rate), row-buffer
locality, bank-level parallelism, and read/write mix -- matches each
application's published character.  The relative overheads of the mitigation
mechanisms depend on exactly these statistics, which is why the substitution
preserves the paper's trends (see DESIGN.md).

Each application is described by an :class:`AppProfile`; ``generate_trace``
turns a profile into a :class:`~repro.cpu.trace.Trace` with a configurable
number of memory accesses.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.trace import Trace, TraceEntry


#: Cache-line size assumed by the generators (matches the system config).
LINE_SIZE = 64

#: Default page/row span used to translate "row locality" into address
#: locality: consecutive lines in the same 8 KiB region tend to map to the
#: same DRAM row under the MOP mapping.
ROW_SPAN_BYTES = 8192


@dataclass(frozen=True)
class AppProfile:
    """Statistical description of one application's memory behaviour.

    Attributes:
        name: application name (kept identical to the paper's figures).
        suite: benchmark suite the name comes from.
        category: ``"H"``, ``"M"`` or ``"L"`` memory intensity class.
        apki: memory accesses per kilo-instruction, pre-LLC.
        working_set_kib: touched footprint in KiB (drives the LLC hit rate:
            footprints below the 8 MiB LLC are mostly cache resident).
        sequential_fraction: probability that an access continues the current
            sequential stream (high values create row-buffer locality).
        write_fraction: fraction of accesses that are stores.
    """

    name: str
    suite: str
    category: str
    apki: float
    working_set_kib: int
    sequential_fraction: float
    write_fraction: float


def _h(name: str, suite: str, apki: float, ws_mib: float, seq: float, wr: float) -> AppProfile:
    return AppProfile(name, suite, "H", apki, int(ws_mib * 1024), seq, wr)


def _m(name: str, suite: str, apki: float, ws_mib: float, seq: float, wr: float) -> AppProfile:
    return AppProfile(name, suite, "M", apki, int(ws_mib * 1024), seq, wr)


def _l(name: str, suite: str, apki: float, ws_mib: float, seq: float, wr: float) -> AppProfile:
    return AppProfile(name, suite, "L", apki, int(ws_mib * 1024), seq, wr)


#: The 57 single-core applications of the paper's evaluation (Fig. 7 names
#: plus the remaining medium / low intensity applications of the five
#: suites).  Profiles are synthetic but ranked to match published
#: memory-intensity characterisations.
APP_PROFILES: List[AppProfile] = [
    # ---- High memory intensity (RBMPKI >= 10) ---------------------------
    _h("429.mcf", "SPEC2006", 70.0, 1536, 0.15, 0.22),
    _h("470.lbm", "SPEC2006", 55.0, 400, 0.75, 0.45),
    _h("462.libquantum", "SPEC2006", 50.0, 64, 0.92, 0.25),
    _h("549.fotonik3d", "SPEC2017", 48.0, 512, 0.70, 0.30),
    _h("459.GemsFDTD", "SPEC2006", 46.0, 700, 0.65, 0.33),
    _h("519.lbm", "SPEC2017", 52.0, 400, 0.75, 0.45),
    _h("434.zeusmp", "SPEC2006", 38.0, 480, 0.60, 0.30),
    _h("510.parest", "SPEC2017", 36.0, 350, 0.45, 0.25),
    _h("437.leslie3d", "SPEC2006", 35.0, 160, 0.68, 0.30),
    _h("483.xalancbmk", "SPEC2006", 32.0, 320, 0.25, 0.15),
    _h("482.sphinx3", "SPEC2006", 30.0, 140, 0.55, 0.10),
    _h("505.mcf", "SPEC2017", 42.0, 1800, 0.18, 0.22),
    _h("471.omnetpp", "SPEC2006", 28.0, 170, 0.20, 0.30),
    _h("tpch2", "TPC", 30.0, 512, 0.35, 0.12),
    _h("520.omnetpp", "SPEC2017", 26.0, 230, 0.20, 0.30),
    _h("tpch17", "TPC", 28.0, 480, 0.35, 0.12),
    _h("473.astar", "SPEC2006", 24.0, 180, 0.30, 0.25),
    _h("436.cactusADM", "SPEC2006", 22.0, 340, 0.55, 0.35),
    _h("jp2_encode", "MediaBench", 25.0, 96, 0.80, 0.40),
    _h("507.cactuBSSN", "SPEC2017", 21.0, 380, 0.55, 0.35),
    # ---- Medium memory intensity (2 <= RBMPKI < 10) ----------------------
    _m("450.soplex", "SPEC2006", 18.0, 60, 0.45, 0.20),
    _m("433.milc", "SPEC2006", 17.0, 72, 0.55, 0.30),
    _m("403.gcc", "SPEC2006", 14.0, 40, 0.35, 0.25),
    _m("523.xalancbmk", "SPEC2017", 15.0, 48, 0.25, 0.15),
    _m("531.deepsjeng", "SPEC2017", 12.0, 36, 0.30, 0.22),
    _m("557.xz", "SPEC2017", 13.0, 52, 0.40, 0.28),
    _m("462.soplex-pds", "SPEC2006", 14.5, 56, 0.45, 0.20),
    _m("tpcc64", "TPC", 16.0, 44, 0.30, 0.35),
    _m("tpch6", "TPC", 15.0, 64, 0.50, 0.10),
    _m("ycsb_aserver", "YCSB", 13.0, 40, 0.28, 0.35),
    _m("ycsb_bserver", "YCSB", 12.0, 36, 0.28, 0.20),
    _m("ycsb_cserver", "YCSB", 11.0, 34, 0.28, 0.05),
    _m("ycsb_dserver", "YCSB", 11.5, 38, 0.30, 0.25),
    _m("ycsb_eserver", "YCSB", 12.5, 42, 0.32, 0.15),
    _m("h264_encode", "MediaBench", 10.0, 28, 0.70, 0.35),
    _m("jp2_decode", "MediaBench", 11.0, 30, 0.75, 0.30),
    _m("445.gobmk", "SPEC2006", 9.0, 26, 0.30, 0.25),
    _m("464.h264ref", "SPEC2006", 9.5, 24, 0.65, 0.30),
    # ---- Low memory intensity (RBMPKI < 2) --------------------------------
    _l("401.bzip2", "SPEC2006", 8.0, 6, 0.50, 0.30),
    _l("456.hmmer", "SPEC2006", 6.0, 4, 0.60, 0.25),
    _l("458.sjeng", "SPEC2006", 5.0, 5, 0.30, 0.22),
    _l("435.gromacs", "SPEC2006", 6.5, 5, 0.55, 0.28),
    _l("444.namd", "SPEC2006", 5.5, 4, 0.60, 0.20),
    _l("481.wrf", "SPEC2006", 7.0, 6, 0.55, 0.28),
    _l("447.dealII", "SPEC2006", 6.0, 5, 0.45, 0.22),
    _l("454.calculix", "SPEC2006", 5.0, 4, 0.55, 0.25),
    _l("465.tonto", "SPEC2006", 4.5, 3, 0.45, 0.22),
    _l("400.perlbench", "SPEC2006", 4.0, 4, 0.35, 0.25),
    _l("500.perlbench", "SPEC2017", 4.0, 4, 0.35, 0.25),
    _l("502.gcc", "SPEC2017", 6.0, 6, 0.35, 0.25),
    _l("525.x264", "SPEC2017", 5.5, 5, 0.70, 0.30),
    _l("538.imagick", "SPEC2017", 4.5, 3, 0.65, 0.30),
    _l("541.leela", "SPEC2017", 3.5, 3, 0.30, 0.20),
    _l("511.povray", "SPEC2017", 3.0, 2, 0.45, 0.22),
    _l("526.blender", "SPEC2017", 6.0, 6, 0.50, 0.28),
    _l("gs", "MediaBench", 4.0, 3, 0.60, 0.30),
    _l("h264_decode", "MediaBench", 4.5, 3, 0.70, 0.28),
]

#: Index by name for fast lookup.
_PROFILES_BY_NAME: Dict[str, AppProfile] = {p.name: p for p in APP_PROFILES}


def profile_by_name(name: str) -> AppProfile:
    """Return the profile of an application by name."""
    if name not in _PROFILES_BY_NAME:
        raise KeyError(f"unknown application {name!r}")
    return _PROFILES_BY_NAME[name]


def app_names(category: Optional[str] = None) -> List[str]:
    """Names of all applications, optionally filtered by intensity class."""
    if category is None:
        return [p.name for p in APP_PROFILES]
    category = category.upper()
    if category not in ("H", "M", "L"):
        raise ValueError("category must be 'H', 'M' or 'L'")
    return [p.name for p in APP_PROFILES if p.category == category]


def apps_by_category() -> Dict[str, List[str]]:
    """Map intensity class to the list of application names."""
    return {category: app_names(category) for category in ("H", "M", "L")}


def generate_trace(
    profile: AppProfile | str,
    num_accesses: int = 20_000,
    seed: int = 0,
    base_address: int = 0,
) -> Trace:
    """Generate a deterministic synthetic trace for an application profile.

    Args:
        profile: an :class:`AppProfile` or an application name.
        num_accesses: number of memory accesses to generate.
        seed: seed mixed with the application name for reproducibility.
        base_address: added to every generated address, so different cores of
            a mix touch disjoint physical regions.

    Returns:
        A :class:`Trace` named after the application.
    """
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    if num_accesses <= 0:
        raise ValueError("num_accesses must be positive")

    # zlib.crc32 keeps the trace independent of PYTHONHASHSEED, so every
    # process generates bit-identical workloads.
    rng = random.Random(zlib.crc32(profile.name.encode("utf-8")) ^ seed)
    working_set_bytes = profile.working_set_kib * 1024
    working_set_lines = max(1, working_set_bytes // LINE_SIZE)
    mean_gap = max(1.0, 1000.0 / profile.apki)

    entries: List[TraceEntry] = []
    current_line = rng.randrange(working_set_lines)
    for _ in range(num_accesses):
        if rng.random() < profile.sequential_fraction:
            current_line = (current_line + 1) % working_set_lines
        else:
            # Jump to a random line; bias towards a hot subset to create the
            # reuse every real application exhibits.
            if rng.random() < 0.5:
                hot_lines = max(1, working_set_lines // 8)
                current_line = rng.randrange(hot_lines)
            else:
                current_line = rng.randrange(working_set_lines)
        gap = int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 1 else 1
        address = base_address + current_line * LINE_SIZE
        entries.append(
            TraceEntry(
                gap_instructions=gap,
                address=address,
                is_write=rng.random() < profile.write_fraction,
            )
        )
    return Trace(profile.name, entries)
