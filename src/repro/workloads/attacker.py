"""Adversarial access patterns.

Two attackers from the paper:

* the **wave attack** (§4): hammer a large set of decoy rows in a balanced
  way so that a periodic / budget-limited mitigation can only refresh a small
  subset per preventive action; used by the security analysis and by the
  end-to-end security example.
* the **memory performance attack** (§11): a core that repeatedly activates a
  small number of rows in a few banks as fast as possible to trigger the
  maximum rate of preventive refreshes, degrading co-running applications.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.controller.address_mapping import AddressMapping, mop_mapping
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.organization import DramAddress, DramOrganization, PAPER_ORGANIZATION


def _address_for(
    mapping: AddressMapping,
    organization: DramOrganization,
    bank_index: int,
    row: int,
    column: int = 0,
) -> int:
    """Physical address that decodes to (bank_index, row, column)."""
    rank, bankgroup, bank = organization.unflatten_bank_index(bank_index)
    dram = DramAddress(
        channel=0, rank=rank, bankgroup=bankgroup, bank=bank, row=row, column=column
    )
    return mapping.encode(dram)


def wave_attack_addresses(
    num_rows: int,
    bank_index: int = 0,
    organization: DramOrganization = PAPER_ORGANIZATION,
    mapping: Optional[AddressMapping] = None,
    row_stride: int = 4,
    first_row: int = 0,
) -> List[int]:
    """Physical addresses of ``num_rows`` decoy rows in one bank.

    Rows are spaced ``row_stride`` apart so their victim sets do not overlap
    (the paper assumes a blast radius of 2).
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    mapping = mapping or mop_mapping(organization)
    addresses = []
    for index in range(num_rows):
        row = (first_row + index * row_stride) % organization.rows
        addresses.append(_address_for(mapping, organization, bank_index, row))
    return addresses


def wave_attack_trace(
    num_rows: int = 64,
    rounds: int = 32,
    bank_index: int = 0,
    organization: DramOrganization = PAPER_ORGANIZATION,
    mapping: Optional[AddressMapping] = None,
    name: str = "wave_attack",
) -> Trace:
    """A wave-attack trace: hammer every decoy row once per round.

    Alternating between two distinct columns of each row forces a fresh
    activation per access even under an open-page policy.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    mapping = mapping or mop_mapping(organization)
    entries: List[TraceEntry] = []
    for round_index in range(rounds):
        for index in range(num_rows):
            row = (index * 4) % organization.rows
            # Interleave with a conflicting row in the same bank so that each
            # access closes the previously open row (classic hammer kernel).
            conflict_row = (row + 2) % organization.rows
            entries.append(
                TraceEntry(
                    gap_instructions=0,
                    address=_address_for(mapping, organization, bank_index, row),
                )
            )
            entries.append(
                TraceEntry(
                    gap_instructions=0,
                    address=_address_for(mapping, organization, bank_index, conflict_row),
                )
            )
    return Trace(name, entries)


def performance_attack_trace(
    num_banks: int = 4,
    rows_per_bank: int = 8,
    num_accesses: int = 40_000,
    organization: DramOrganization = PAPER_ORGANIZATION,
    mapping: Optional[AddressMapping] = None,
    seed: int = 0,
    name: str = "perf_attack",
) -> Trace:
    """The §11 memory performance attack.

    One malicious core hammers ``rows_per_bank`` rows in each of ``num_banks``
    banks back-to-back (no compute gap), maximising the rate of preventive
    refreshes that the mitigation mechanism performs and thereby hogging DRAM
    bandwidth.  The paper found 8 rows x 4 banks to be the most damaging
    pattern for both Chronus and PRAC in its configuration.
    """
    if num_banks <= 0 or rows_per_bank <= 0 or num_accesses <= 0:
        raise ValueError("attack parameters must be positive")
    mapping = mapping or mop_mapping(organization)
    rng = random.Random(seed)
    banks = list(range(min(num_banks, organization.total_banks)))
    base_row = rng.randrange(organization.rows // 2)
    rows = [base_row + 4 * index for index in range(rows_per_bank)]

    entries: List[TraceEntry] = []
    cursor = 0
    while len(entries) < num_accesses:
        row = rows[cursor % rows_per_bank]
        for bank_index in banks:
            if len(entries) >= num_accesses:
                break
            entries.append(
                TraceEntry(
                    gap_instructions=0,
                    address=_address_for(mapping, organization, bank_index, row),
                )
            )
        cursor += 1
    return Trace(name, entries)
