"""Deprecated location of the adversarial access patterns.

The attack builders moved into the :mod:`repro.attacks` subsystem (the
declarative pattern registry plus the red-team search engine).  This module
remains as a thin shim so existing imports keep working; new code should use
:mod:`repro.attacks.patterns`.
"""

from __future__ import annotations

import warnings

from repro.attacks.patterns import (  # noqa: F401  (re-exports)
    _address_for,
    performance_attack_trace,
    wave_attack_addresses,
    wave_attack_trace,
)

warnings.warn(
    "repro.workloads.attacker is deprecated; import attack builders from "
    "repro.attacks (e.g. repro.attacks.patterns) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "performance_attack_trace",
    "wave_attack_addresses",
    "wave_attack_trace",
]
