"""Workloads: synthetic benign application traces, mixes, and attackers."""

from repro.workloads.synthetic import (
    AppProfile,
    APP_PROFILES,
    app_names,
    apps_by_category,
    generate_trace,
    profile_by_name,
)
from repro.workloads.mixes import MIX_TYPES, WorkloadMix, build_mix_traces, workload_mixes
# Attack traces live in repro.attacks now; re-exported here for
# backwards compatibility (repro.workloads.attacker is a deprecation shim).
from repro.attacks.patterns import (
    performance_attack_trace,
    wave_attack_addresses,
    wave_attack_trace,
)

__all__ = [
    "AppProfile",
    "APP_PROFILES",
    "app_names",
    "apps_by_category",
    "generate_trace",
    "profile_by_name",
    "MIX_TYPES",
    "WorkloadMix",
    "workload_mixes",
    "build_mix_traces",
    "performance_attack_trace",
    "wave_attack_trace",
    "wave_attack_addresses",
]
