"""Per-command DRAM energy model.

The paper evaluates DRAM energy with DRAMPower integrated into Ramulator 2.0.
This module provides the same style of accounting: a per-command energy plus
a background power term proportional to execution time.  The absolute values
are representative DDR5 numbers; the experiments only report energy
*normalised to a baseline with no read-disturbance mitigation*, so what
matters is the command mix and the execution time, both of which come from
the simulator.

Mechanism-specific costs are captured by:

* ``act_energy_multiplier`` -- extra energy per row access for in-DRAM
  counter maintenance (PRAC's in-row read-modify-write, Chronus' counter
  subarray: +19.07 %, §7.1);
* victim-row refreshes performed inside RFM commands or borrowed from
  periodic refreshes (internal row cycles);
* victim-row refreshes performed by the memory controller (full row cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


@dataclass(frozen=True)
class EnergyParameters:
    """Per-command energies in nanojoules and background power per cycle."""

    act_pre_nj: float = 18.0
    read_nj: float = 12.0
    write_nj: float = 14.0
    refresh_nj: float = 250.0
    rfm_nj: float = 120.0
    #: Energy of one internally refreshed victim row (inside REF/RFM windows).
    internal_victim_row_nj: float = 9.0
    #: Energy of one controller-side victim-row refresh (a full row cycle).
    vrr_row_nj: float = 18.0
    #: Background (standby + peripheral) energy per DRAM clock cycle.
    background_nj_per_cycle: float = 0.12


@dataclass
class EnergyBreakdown:
    """Energy of one simulation, split by source (all values in nJ)."""

    activation: float = 0.0
    read: float = 0.0
    write: float = 0.0
    refresh: float = 0.0
    rfm: float = 0.0
    preventive: float = 0.0
    background: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.activation
            + self.read
            + self.write
            + self.refresh
            + self.rfm
            + self.preventive
            + self.background
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "activation": self.activation,
            "read": self.read,
            "write": self.write,
            "refresh": self.refresh,
            "rfm": self.rfm,
            "preventive": self.preventive,
            "background": self.background,
            "total": self.total,
        }


class EnergyModel:
    """Computes the DRAM energy of a simulation from its command counts."""

    def __init__(self, params: EnergyParameters | None = None) -> None:
        self.params = params or EnergyParameters()

    def compute(
        self,
        command_counts: Mapping[str, int],
        cycles: int,
        act_energy_multiplier: float = 1.0,
        internal_victim_rows: int = 0,
        borrowed_refresh_rows: int = 0,
    ) -> EnergyBreakdown:
        """Compute the energy breakdown of one simulation.

        Args:
            command_counts: DRAM command counts keyed by mnemonic
                (``ACT``, ``PRE``, ``RD``, ``WR``, ``REF``, ``RFM``, ``VRR``).
            cycles: total simulated DRAM cycles (for background energy).
            act_energy_multiplier: per-row-access energy multiplier for
                in-DRAM counter maintenance.
            internal_victim_rows: victim rows refreshed inside RFM windows by
                an on-die mechanism.
            borrowed_refresh_rows: victim rows refreshed by borrowing time
                from periodic REF commands.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        p = self.params
        breakdown = EnergyBreakdown()
        activations = command_counts.get("ACT", 0)
        breakdown.activation = activations * p.act_pre_nj * act_energy_multiplier
        breakdown.read = command_counts.get("RD", 0) * p.read_nj
        breakdown.write = command_counts.get("WR", 0) * p.write_nj
        breakdown.refresh = command_counts.get("REF", 0) * p.refresh_nj
        breakdown.rfm = command_counts.get("RFM", 0) * p.rfm_nj
        breakdown.preventive = (
            command_counts.get("VRR", 0) * p.vrr_row_nj
            + internal_victim_rows * p.internal_victim_row_nj
            + borrowed_refresh_rows * p.internal_victim_row_nj
        )
        breakdown.background = cycles * p.background_nj_per_cycle
        return breakdown


#: Shared default instance.
DEFAULT_ENERGY_MODEL = EnergyModel()
