"""DRAM energy accounting (DRAMPower-style per-command model)."""

from repro.energy.drampower import EnergyModel, EnergyBreakdown, DEFAULT_ENERGY_MODEL

__all__ = ["EnergyModel", "EnergyBreakdown", "DEFAULT_ENERGY_MODEL"]
