"""repro: a from-scratch reproduction of Chronus (HPCA 2025).

The package implements a cycle-level DDR5 simulation substrate, the PRAC /
RFM industry read-disturbance mitigations, the Chronus proposal, academic
baselines (Graphene, Hydra, PARA, ABACuS, PRFM), the analytical security and
bandwidth-attack models, synthetic workloads, a DRAM energy model and the
experiment harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import paper_system_config, simulate
    from repro.workloads import build_mix_traces, workload_mixes

    mix = workload_mixes()[0]
    traces = build_mix_traces(mix, accesses_per_core=2000)
    result = simulate(paper_system_config(mechanism="Chronus", nrh=1024), traces)
    print(result.core_ipcs, result.energy_nj)
"""

from repro.system.config import SystemConfig, appendix_e_system_config, paper_system_config
from repro.system.simulator import SystemSimulator, simulate
from repro.system.metrics import SimulationResult, weighted_speedup
from repro.core.factory import MECHANISM_NAMES, build_mechanism

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "paper_system_config",
    "appendix_e_system_config",
    "SystemSimulator",
    "simulate",
    "SimulationResult",
    "weighted_speedup",
    "MECHANISM_NAMES",
    "build_mechanism",
    "__version__",
]
