"""Mechanism factory: build any evaluated mechanism by name.

The experiments sweep mechanisms by name (matching the paper's legends), so
this module centralises the secure-configuration logic: given a mechanism
name and a RowHammer threshold, it returns a :class:`MechanismSetup` with

* the on-DRAM-die component (PRAC / Chronus), if any,
* the memory-controller component (PRFM / Graphene / Hydra / PARA / ABACuS),
  if any,
* whether the PRAC timing parameters must be applied, and
* whether the resulting configuration is secure against the wave attack.

``PRAC+PRFM`` is the composite configuration from the specification: PRAC-4
on the DRAM die plus a controller-side periodic RFM with ``RFMth = 75``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.security import DEFAULT_PARAMETERS, SecurityParameters
from repro.core.abacus import ABACuS
from repro.core.chronus import Chronus, ChronusPB
from repro.core.graphene import Graphene
from repro.core.hydra import Hydra
from repro.core.mitigation import ControllerMitigation, OnDieMitigation
from repro.core.para import PARA
from repro.core.prac import PRAC
from repro.core.prfm import PRFM


#: RFM threshold of the PRAC+PRFM example configuration in JESD79-5c.
PRAC_PRFM_RFM_THRESHOLD = 75

#: All mechanism names accepted by :func:`build_mechanism`, in the order the
#: paper's figures list them.
MECHANISM_NAMES: Tuple[str, ...] = (
    "None",
    "Chronus",
    "Chronus-PB",
    "PRAC-4",
    "PRAC-2",
    "PRAC-1",
    "PRAC+PRFM",
    "PRFM",
    "Graphene",
    "Hydra",
    "PARA",
    "ABACuS",
)


@dataclass
class MechanismSetup:
    """Everything the system simulator needs to install a mechanism."""

    name: str
    on_die: Optional[OnDieMitigation]
    controller: Optional[ControllerMitigation]
    use_prac_timings: bool
    is_secure: bool

    @property
    def act_energy_multiplier(self) -> float:
        """Row-access energy multiplier of the installed mechanism(s)."""
        multiplier = 1.0
        if self.on_die is not None:
            multiplier = max(multiplier, self.on_die.act_energy_multiplier)
        if self.controller is not None:
            multiplier = max(multiplier, self.controller.act_energy_multiplier)
        return multiplier

    def mechanisms(self):
        """Iterate over the installed mechanism objects."""
        if self.on_die is not None:
            yield self.on_die
        if self.controller is not None:
            yield self.controller


def build_mechanism(
    name: str,
    nrh: int,
    num_banks: int,
    seed: int = 0,
    security_params: SecurityParameters = DEFAULT_PARAMETERS,
    allow_insecure: bool = True,
    backend: Optional[str] = None,
) -> MechanismSetup:
    """Build the mechanism configuration named ``name`` for threshold ``nrh``.

    Args:
        name: one of :data:`MECHANISM_NAMES` (case-sensitive).
        nrh: RowHammer threshold.
        num_banks: number of banks in the simulated channel.
        seed: random seed (used by PARA).
        security_params: physical parameters for secure-configuration search.
        allow_insecure: if True, mechanisms that cannot be configured
            securely at ``nrh`` fall back to their most aggressive
            configuration and are flagged insecure (mirroring the paper's
            red-edged bars); if False, a ``ValueError`` propagates.
        backend: counter-store backend forwarded to mechanisms with
            array-capable stores ("dict" / "array"; None resolves to the
            module default, array).  Both backends are observably identical,
            so the choice never enters a cache key.

    Returns:
        A :class:`MechanismSetup`.

    Raises:
        ValueError: for an unknown mechanism name.
    """
    if name == "None":
        return MechanismSetup(name, None, None, use_prac_timings=False, is_secure=True)

    if name == "PRFM":
        prfm = PRFM(nrh, num_banks, security_params=security_params,
                    allow_insecure=allow_insecure)
        return MechanismSetup(name, None, prfm, use_prac_timings=False,
                              is_secure=prfm.is_secure)

    if name in ("PRAC-1", "PRAC-2", "PRAC-4"):
        nref = int(name.split("-")[1])
        prac = PRAC(nrh, num_banks, nref=nref, security_params=security_params,
                    allow_insecure=allow_insecure, backend=backend)
        return MechanismSetup(name, prac, None, use_prac_timings=True,
                              is_secure=prac.is_secure)

    if name == "PRAC+PRFM":
        prac = PRAC(nrh, num_banks, nref=4, security_params=security_params,
                    allow_insecure=allow_insecure, backend=backend)
        prfm = PRFM(nrh, num_banks, rfm_threshold=PRAC_PRFM_RFM_THRESHOLD,
                    security_params=security_params)
        return MechanismSetup(name, prac, prfm, use_prac_timings=True,
                              is_secure=prac.is_secure)

    if name == "Chronus":
        chronus = Chronus(nrh, num_banks, security_params=security_params,
                          backend=backend)
        return MechanismSetup(name, chronus, None, use_prac_timings=False,
                              is_secure=True)

    if name == "Chronus-PB":
        chronus_pb = ChronusPB(nrh, num_banks, security_params=security_params,
                               allow_insecure=allow_insecure, backend=backend)
        return MechanismSetup(name, chronus_pb, None, use_prac_timings=False,
                              is_secure=chronus_pb.is_secure)

    if name == "Graphene":
        graphene = Graphene(nrh, num_banks, backend=backend)
        return MechanismSetup(name, None, graphene, use_prac_timings=False,
                              is_secure=True)

    if name == "Hydra":
        hydra = Hydra(nrh, num_banks, backend=backend)
        return MechanismSetup(name, None, hydra, use_prac_timings=False,
                              is_secure=True)

    if name == "PARA":
        para = PARA(nrh, num_banks, seed=seed)
        return MechanismSetup(name, None, para, use_prac_timings=False,
                              is_secure=True)

    if name == "ABACuS":
        abacus = ABACuS(nrh, num_banks, backend=backend)
        return MechanismSetup(name, None, abacus, use_prac_timings=False,
                              is_secure=True)

    raise ValueError(f"unknown mechanism {name!r}; expected one of {MECHANISM_NAMES}")
