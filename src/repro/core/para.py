"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

PARA is a stateless, memory-controller-based mechanism: every time a row is
closed after being activated, the controller refreshes one of its physically
adjacent rows with a (small) probability ``p``.  Because PARA keeps no
counters, its storage cost is essentially zero, but the refresh probability
must grow as ``N_RH`` shrinks, which makes its performance and energy
overheads the largest of all evaluated mechanisms at low thresholds
(Fig. 8 / Fig. 10 of the paper).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.mitigation import (
    DEFAULT_BLAST_RADIUS,
    ControllerMitigation,
    PreventiveRefresh,
)


#: Target probability that an aggressor row escapes mitigation for ``N_RH``
#: consecutive activations.  The refresh probability is chosen so that
#: ``(1 - p) ** N_RH <= TARGET_FAILURE_PROBABILITY`` (per-victim-side), the
#: standard way PARA is provisioned in the literature.
TARGET_FAILURE_PROBABILITY = 1e-15


def para_refresh_probability(
    nrh: int, target_failure: float = TARGET_FAILURE_PROBABILITY
) -> float:
    """Refresh probability needed for a given RowHammer threshold.

    Solves ``(1 - p) ** nrh <= target_failure`` for ``p``.
    """
    if nrh <= 0:
        raise ValueError("nrh must be positive")
    if not 0.0 < target_failure < 1.0:
        raise ValueError("target_failure must be in (0, 1)")
    p = 1.0 - target_failure ** (1.0 / nrh)
    return min(1.0, p)


class PARA(ControllerMitigation):
    """Probabilistic victim-row refresh on row closure."""

    name = "PARA"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        probability: Optional[float] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        seed: int = 0,
        target_failure: float = TARGET_FAILURE_PROBABILITY,
    ) -> None:
        """Create a PARA policy.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks (used only for bookkeeping).
            probability: per-activation refresh probability; derived from
                ``nrh`` and ``target_failure`` when ``None``.
            blast_radius: victim rows on each side of an aggressor (PARA
                refreshes one neighbour per trigger, chosen at random).
            seed: seed of the private random number generator, so simulations
                are reproducible.
            target_failure: bitflip escape probability budget.
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        if probability is None:
            probability = para_refresh_probability(nrh, target_failure)
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self._rng = random.Random(seed)

    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        if self._rng.random() < self.probability:
            # Refresh one neighbour within the blast radius, chosen at random
            # (both sides are equally likely).
            self.queue_refresh(
                PreventiveRefresh(bank_id=bank_id, aggressor_row=row, num_rows=1)
            )

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """PARA is stateless; it only needs a random number generator."""
        return {}

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(0)
