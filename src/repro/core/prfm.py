"""PRFM: Periodic Refresh Management (pre-2024 DDR5, JESD79-5).

Before the April-2024 PRAC update, the DDR5 specification advised the memory
controller to issue an RFM command whenever the number of activations to a
bank (or logical memory region) exceeds a threshold, ``RFMth``.  The DRAM
chip uses the RFM window to refresh the victims of an aggressor row of its
choosing.

PRFM is a *controller-side* policy: the controller keeps one activation
counter per bank (this is the entirety of PRFM's storage cost -- the smallest
of all evaluated mechanisms, Fig. 11) and requests an RFM when the counter
reaches ``RFMth``.  Because PRFM performs preventive refreshes periodically
regardless of which rows were activated, the wave attack forces very small
``RFMth`` values at low ``N_RH`` (Fig. 3a), which makes PRFM's overhead grow
quickly as ``N_RH`` decreases.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    SecurityParameters,
    secure_prfm_threshold,
)
from repro.core.mitigation import DEFAULT_BLAST_RADIUS, ControllerMitigation


class PRFM(ControllerMitigation):
    """Periodic RFM issued every ``RFMth`` activations per bank."""

    name = "PRFM"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        rfm_threshold: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        security_params: SecurityParameters = DEFAULT_PARAMETERS,
        allow_insecure: bool = False,
    ) -> None:
        """Create a PRFM policy.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks tracked (one counter each).
            rfm_threshold: activations per bank between RFM commands.  When
                ``None``, the largest wave-attack-secure threshold is chosen
                from the §5 analysis.
            blast_radius: victim rows on each side of an aggressor.
            security_params: parameters for the secure-threshold search.
            allow_insecure: if no secure threshold exists for ``nrh``, fall
                back to the most aggressive candidate (``RFMth = 2``) and set
                :attr:`is_secure` to False instead of raising.
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        self.is_secure = True
        if rfm_threshold is None:
            try:
                rfm_threshold = secure_prfm_threshold(nrh, params=security_params)
            except ValueError:
                if not allow_insecure:
                    raise
                rfm_threshold = 2
                self.is_secure = False
        if rfm_threshold <= 0:
            raise ValueError("rfm_threshold must be positive")
        self.rfm_threshold = rfm_threshold
        self._bank_counters: List[int] = [0] * num_banks
        self._rfm_pending: List[bool] = [False] * num_banks
        # Banks with _rfm_pending set, kept sorted for deterministic service
        # order (mirrors the ascending-bank probe the controller used to do).
        self._rfm_pending_banks: List[int] = []

    # ------------------------------------------------------------------ #
    # Observation hooks
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        self._bank_counters[bank_id] += 1
        if self._bank_counters[bank_id] >= self.rfm_threshold:
            if not self._rfm_pending[bank_id]:
                self._rfm_pending[bank_id] = True
                bisect.insort(self._rfm_pending_banks, bank_id)

    # ------------------------------------------------------------------ #
    # RFM interface
    # ------------------------------------------------------------------ #
    def rfm_needed(self, bank_id: int) -> bool:
        return self._rfm_pending[bank_id]

    def rfm_pending_banks(self) -> List[int]:
        # Live internal state (read-only contract): the controller consults
        # this every tick while RFMs are owed, so no copy is made.
        return self._rfm_pending_banks

    def acknowledge_rfm(
        self, bank_id: int, cycle: int, on_die_refreshed: Optional[int] = None
    ) -> None:
        """Reset the bank counter after the controller issued the RFM.

        Args:
            bank_id: bank the RFM covered.
            cycle: issue cycle.
            on_die_refreshed: victim rows an *on-die* mechanism refreshed
                during this RFM, or ``None`` when the device hosts no on-die
                mechanism at all.  Only in the ``None`` case does the plain
                DRAM chip pick an aggressor itself, which listeners are told
                about with an unknown (``None``) aggressor row; in composite
                configurations (PRAC+PRFM) the on-die mechanism reports its
                own refreshes -- including refreshing nothing -- so no
                phantom refresh may be credited here.
        """
        if self._rfm_pending[bank_id]:
            self._rfm_pending_banks.remove(bank_id)
        self._rfm_pending[bank_id] = False
        self._bank_counters[bank_id] = 0
        self.stats.rfm_commands += 1
        self.stats.preventive_refresh_rows += self.victim_rows_per_aggressor
        if on_die_refreshed is None:
            self.notify_victims_refreshed(
                bank_id, None, self.victim_rows_per_aggressor, cycle
            )

    def bank_counter(self, bank_id: int) -> int:
        """Current activation count of ``bank_id`` since the last RFM."""
        return self._bank_counters[bank_id]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """PRFM keeps a single activation counter per bank in the controller."""
        counter_bits = max(1, math.ceil(math.log2(self.nrh))) + 1
        return {"sram_bits": num_banks * counter_bits}

    def reset(self) -> None:
        super().reset()
        self._bank_counters = [0] * self.num_banks
        self._rfm_pending = [False] * self.num_banks
        self._rfm_pending_banks = []
