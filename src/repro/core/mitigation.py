"""Mitigation mechanism interfaces.

Every read-disturbance mitigation mechanism in this repository implements the
:class:`MitigationMechanism` interface.  Mechanisms come in two flavours,
mirroring the taxonomy in the paper (Fig. 6):

* **Controller-side** mechanisms (:class:`ControllerMitigation`) live in the
  memory controller.  They observe row activations, decide when victim rows
  must be refreshed, and queue *preventive refreshes* that the controller
  serves by blocking the target bank (Graphene, Hydra, PARA) or by issuing an
  RFM command (PRFM).

* **On-DRAM-die** mechanisms (:class:`OnDieMitigation`) live inside the DRAM
  device.  They maintain per-row activation counters, assert the ``alert_n``
  back-off signal when a counter reaches the back-off threshold, and perform
  the victim refreshes themselves during RFM commands (PRAC, Chronus).

The memory controller and DRAM device only ever talk to these interfaces,
which keeps the simulator mechanism-agnostic, exactly like Ramulator 2.0's
plugin architecture that the paper's artifact builds on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

#: Listener signature for victim-refresh events:
#: ``(bank_id, aggressor_row, num_rows, cycle)``.  ``aggressor_row`` is None
#: when the DRAM chip chooses the aggressor itself (e.g. a plain PRFM RFM).
MitigationListener = Callable[[int, Optional[int], int, int], None]


#: Number of physically adjacent victim rows on each side of an aggressor
#: (the paper assumes a blast radius of 2, i.e. four victim rows total).
DEFAULT_BLAST_RADIUS = 2


@dataclass(slots=True)
class PreventiveRefresh:
    """A queued request to refresh victim rows of an aggressor.

    Attributes:
        bank_id: flat bank index containing the aggressor row.
        aggressor_row: the row whose neighbours must be refreshed.
        num_rows: how many victim rows must be refreshed (``2 * blast_radius``
            unless the mechanism refreshes a single neighbour, e.g. PARA).
    """

    bank_id: int
    aggressor_row: int
    num_rows: int


@dataclass(slots=True)
class MitigationStats:
    """Counters shared by all mechanisms (consumed by the energy model)."""

    preventive_refresh_rows: int = 0
    rfm_commands: int = 0
    backoffs: int = 0
    borrowed_refreshes: int = 0
    tracked_activations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "preventive_refresh_rows": self.preventive_refresh_rows,
            "rfm_commands": self.rfm_commands,
            "backoffs": self.backoffs,
            "borrowed_refreshes": self.borrowed_refreshes,
            "tracked_activations": self.tracked_activations,
        }


class MitigationMechanism(abc.ABC):
    """Common interface for all read-disturbance mitigation mechanisms."""

    #: Human-readable mechanism name (e.g. ``"PRAC-4"``).
    name: str = "base"

    #: Either ``"controller"`` or ``"dram"``.
    side: str = "controller"

    #: If True, the mechanism requires the PRAC timing parameters (Table 1)
    #: because counters are updated while the row closes.
    requires_prac_timings: bool = False

    #: Multiplier applied to the energy of a row access (ACT+PRE pair) to
    #: account for in-DRAM counter maintenance (e.g. Chronus' counter
    #: subarray adds 19.07 % per the paper's SPICE evaluation).
    act_energy_multiplier: float = 1.0

    def __init__(self, nrh: int, blast_radius: int = DEFAULT_BLAST_RADIUS) -> None:
        if nrh <= 0:
            raise ValueError(f"N_RH must be positive, got {nrh}")
        if blast_radius <= 0:
            raise ValueError(f"blast radius must be positive, got {blast_radius}")
        self.nrh = nrh
        self.blast_radius = blast_radius
        self.stats = MitigationStats()
        #: External observers of victim-refresh events (e.g. the red-team
        #: :class:`~repro.attacks.oracle.DisturbanceOracle`).  Not reset by
        #: :meth:`reset` -- listeners outlive mechanism state.
        self._mitigation_listeners: List[MitigationListener] = []

    # ------------------------------------------------------------------ #
    # Observation hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        """Called when a row is activated."""

    def on_precharge(self, bank_id: int, row: int, cycle: int) -> None:
        """Called when a row is precharged (closed)."""

    def on_periodic_refresh(self, bank_ids: List[int], cycle: int) -> None:
        """Called when a periodic REF is issued to the given banks.

        On-die mechanisms use this hook to *borrow* time from the periodic
        refresh and transparently refresh the victims of the most activated
        recently-accessed row (§5 and §7.1 of the paper).
        """

    def on_refresh_window(self, cycle: int) -> None:
        """Called once per refresh window (tREFW); resets activation state."""

    def reset(self) -> None:
        """Reset all mechanism state (used between simulations)."""
        self.stats = MitigationStats()

    # ------------------------------------------------------------------ #
    # Victim-refresh observation
    # ------------------------------------------------------------------ #
    def add_mitigation_listener(self, listener: MitigationListener) -> None:
        """Subscribe to victim-refresh events of this mechanism."""
        self._mitigation_listeners.append(listener)

    def notify_victims_refreshed(
        self,
        bank_id: int,
        aggressor_row: Optional[int],
        num_rows: int,
        cycle: int,
    ) -> None:
        """Tell listeners the victims of an aggressor were just refreshed.

        ``aggressor_row`` is ``None`` when the device chooses the aggressor
        internally (the listener may assume the defence's best choice).
        """
        for listener in self._mitigation_listeners:
            listener(bank_id, aggressor_row, num_rows, cycle)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def victim_rows_per_aggressor(self) -> int:
        """Victim rows refreshed when an aggressor is mitigated."""
        return 2 * self.blast_radius

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """Return storage overhead in bits, split by location.

        Returns a dict with ``"dram_bits"``, ``"sram_bits"`` and ``"cam_bits"``
        keys (missing keys mean zero).  Used by the Fig. 11 / Fig. 13
        experiments.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, nrh={self.nrh})"


class ControllerMitigation(MitigationMechanism):
    """A mechanism that lives in the memory controller.

    Controller-side mechanisms queue :class:`PreventiveRefresh` actions; the
    memory controller drains the queue by blocking the target bank for the
    duration of the victim refreshes.  They may also request RFM commands
    (PRFM) via :meth:`rfm_needed`.
    """

    side = "controller"

    def __init__(self, nrh: int, blast_radius: int = DEFAULT_BLAST_RADIUS) -> None:
        super().__init__(nrh, blast_radius)
        self._pending: Dict[int, List[PreventiveRefresh]] = {}

    # -- preventive refresh queue --------------------------------------- #
    def queue_refresh(self, refresh: PreventiveRefresh) -> None:
        """Queue a preventive refresh for the controller to serve."""
        self._pending.setdefault(refresh.bank_id, []).append(refresh)
        self.stats.preventive_refresh_rows += refresh.num_rows

    def pending_refresh(self, bank_id: int) -> Optional[PreventiveRefresh]:
        """Peek at the oldest pending preventive refresh for ``bank_id``."""
        queue = self._pending.get(bank_id)
        return queue[0] if queue else None

    def pop_refresh(self, bank_id: int, cycle: int = 0) -> Optional[PreventiveRefresh]:
        """Remove and return the oldest pending refresh for ``bank_id``.

        The caller is about to serve the refresh, so listeners are notified
        that the aggressor's victims are (being) refreshed.
        """
        queue = self._pending.get(bank_id)
        if not queue:
            return None
        refresh = queue.pop(0)
        if not queue:
            # Prune drained buckets so has_pending_refreshes stays O(1) and
            # banks_with_pending_refreshes never walks dead keys.
            del self._pending[bank_id]
        self.notify_victims_refreshed(
            refresh.bank_id, refresh.aggressor_row, refresh.num_rows, cycle
        )
        return refresh

    def has_pending_refreshes(self) -> bool:
        """True if any bank has a queued preventive refresh (hot-path guard)."""
        return bool(self._pending)

    def banks_with_pending_refreshes(self) -> List[int]:
        """Return the bank ids that currently have queued refreshes.

        Drained buckets are pruned eagerly (see :meth:`pop_refresh`), so the
        key set is exactly the pending set.  The memory controller's hot
        paths iterate ``_pending`` directly instead of paying this list
        allocation per tick; the attribute is part of the hot-path contract.
        """
        return list(self._pending)

    def total_pending_rows(self) -> int:
        """Total number of victim rows waiting to be refreshed."""
        return sum(r.num_rows for queue in self._pending.values() for r in queue)

    # -- RFM interface (used by PRFM) ------------------------------------ #
    def rfm_needed(self, bank_id: int) -> bool:
        """Return True if the controller should issue an RFM to ``bank_id``."""
        return False

    def rfm_pending_banks(self) -> Sequence[int]:
        """Banks that currently need an RFM, in ascending bank order.

        The memory controller iterates this instead of probing
        :meth:`rfm_needed` for every bank every tick; mechanisms that
        override :meth:`rfm_needed` must override this consistently.  The
        returned sequence may be live internal state -- callers must treat
        it as read-only.
        """
        return ()

    def acknowledge_rfm(self, bank_id: int, cycle: int) -> None:
        """Called after the controller issues the RFM requested for a bank."""

    def reset(self) -> None:
        super().reset()
        self._pending = {}


class OnDieMitigation(MitigationMechanism):
    """A mechanism implemented inside the DRAM device.

    On-die mechanisms communicate with the memory controller exclusively
    through the ``alert_n`` back-off signal and RFM commands, as specified by
    PRAC in JESD79-5c.
    """

    side = "dram"

    @abc.abstractmethod
    def backoff_asserted(self) -> bool:
        """Return True while the device requests preventive refreshes."""

    @abc.abstractmethod
    def on_rfm(self, bank_ids: List[int], cycle: int) -> int:
        """Serve an RFM command.

        The device refreshes the victims of the most-activated tracked row in
        each of ``bank_ids`` and updates the back-off state.  Returns the
        total number of victim rows refreshed (for the energy model).
        """

    def wants_more_rfm(self) -> bool:
        """Return True if the recovery period should issue another RFM.

        PRAC issues a fixed number of RFMs per back-off; Chronus keeps the
        back-off asserted until every row above the threshold is refreshed.
        """
        return self.backoff_asserted()

    def activations_until_next_backoff(self) -> Optional[int]:
        """For delay-period mechanisms: ACTs remaining before re-assertion."""
        return None


class NoMitigation(ControllerMitigation):
    """Baseline: no read-disturbance mitigation at all."""

    name = "None"

    def __init__(self, nrh: int = 10**9, blast_radius: int = DEFAULT_BLAST_RADIUS) -> None:
        super().__init__(nrh, blast_radius)

    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
