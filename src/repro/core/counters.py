"""Per-row activation counter storage.

Both PRAC and Chronus maintain one activation counter per DRAM row.  PRAC
stores the counter bits inside the data row itself and updates them while the
row is being closed (which inflates tRP/tRC -- Table 1).  Chronus stores the
counters in a dedicated *counter subarray* per bank and updates them with the
decrementer circuit concurrently with the data access (§7.1), which is why it
keeps the baseline timings.

This module provides:

* :class:`PerRowCounters` -- a sparse per-bank activation counter store,
* :class:`CounterSubarray` -- Chronus' counter-subarray geometry and capacity
  accounting (rows / bytes used, 0.05 % capacity overhead claim),
* :class:`AggressorTrackingTable` -- the small per-bank table used to find
  the rows with the highest activation counts during an RFM (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class PerRowCounters:
    """Sparse per-bank, per-row activation counters.

    A real device allocates a counter for every row; the simulator keeps the
    counters sparsely because only activated rows ever hold non-zero values.
    """

    def __init__(self, num_banks: int) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        self._counters: List[Dict[int, int]] = [dict() for _ in range(num_banks)]

    def increment(self, bank_id: int, row: int) -> int:
        """Increment and return the activation count of (bank, row)."""
        counters = self._counters[bank_id]
        value = counters.get(row, 0) + 1
        counters[row] = value
        return value

    def get(self, bank_id: int, row: int) -> int:
        """Return the activation count of (bank, row)."""
        return self._counters[bank_id].get(row, 0)

    def reset_row(self, bank_id: int, row: int) -> None:
        """Reset the counter of a single row (after its victims are refreshed)."""
        self._counters[bank_id].pop(row, None)

    def reset_bank(self, bank_id: int) -> None:
        """Reset all counters of a bank."""
        self._counters[bank_id].clear()

    def reset_all(self) -> None:
        """Reset every counter (refresh-window boundary)."""
        for counters in self._counters:
            counters.clear()

    def rows_at_or_above(self, bank_id: int, threshold: int) -> List[int]:
        """Rows of a bank whose count is >= threshold."""
        return [row for row, count in self._counters[bank_id].items() if count >= threshold]

    def max_row(self, bank_id: int) -> Optional[Tuple[int, int]]:
        """Return (row, count) with the maximum count in a bank, or None."""
        counters = self._counters[bank_id]
        if not counters:
            return None
        row = max(counters, key=counters.__getitem__)
        return row, counters[row]

    def nonzero_rows(self, bank_id: int) -> int:
        """Number of rows with a non-zero counter in a bank."""
        return len(self._counters[bank_id])

    def iter_bank(self, bank_id: int) -> Iterator[Tuple[int, int]]:
        """Iterate over (row, count) pairs of a bank."""
        return iter(self._counters[bank_id].items())


@dataclass(frozen=True)
class CounterSubarray:
    """Geometry of Chronus' per-bank counter subarray (§7.1).

    The paper's reference configuration stores 8-bit counters for 128K data
    rows of 16 Kbit each, which fits in 64 counter-subarray rows and costs
    0.05 % of the bank's capacity.
    """

    rows_per_bank: int = 131072
    row_size_bits: int = 16384
    counter_width_bits: int = 8

    @property
    def counter_bits_per_bank(self) -> int:
        """Total counter storage needed for one bank, in bits."""
        return self.rows_per_bank * self.counter_width_bits

    @property
    def counter_rows_needed(self) -> int:
        """Number of counter-subarray rows needed to store all counters."""
        bits = self.counter_bits_per_bank
        return -(-bits // self.row_size_bits)  # ceil division

    @property
    def capacity_overhead(self) -> float:
        """Fraction of the bank's capacity consumed by the counter subarray."""
        bank_bits = self.rows_per_bank * self.row_size_bits
        return self.counter_bits_per_bank / bank_bits

    def locate(self, row: int) -> Tuple[int, int]:
        """Map a data-row address to (counter_row, bit_offset) in the subarray.

        Chronus parses the externally provided row address into the counter
        subarray's row / column / byte addresses (§7.1, step "Updating the
        Counters").
        """
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range [0, {self.rows_per_bank})")
        counters_per_row = self.row_size_bits // self.counter_width_bits
        counter_row = row // counters_per_row
        bit_offset = (row % counters_per_row) * self.counter_width_bits
        return counter_row, bit_offset


@dataclass
class AttEntry:
    """One entry of the Aggressor Tracking Table."""

    row: int
    count: int
    valid: bool = True


class AggressorTrackingTable:
    """Per-bank table of the rows with the highest activation counts (§3).

    PRAC cannot search all per-row counters during an RFM, so it keeps a
    small table (4 entries by default, enough for the recovery period's RFM
    commands).  The table is updated on every precharge:

    1. if the precharged row is already tracked, its count is updated;
    2. otherwise, if an entry is invalid, the row is inserted;
    3. otherwise, if the row's count exceeds the entry with the *lowest*
       count, that entry is replaced.

    During an RFM, the entry with the *maximum* count is invalidated and its
    victims refreshed.
    """

    def __init__(self, num_entries: int = 4) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._entries: List[AttEntry] = []

    def update(self, row: int, count: int) -> None:
        """Update the table after ``row`` was precharged with ``count``."""
        for entry in self._entries:
            if entry.valid and entry.row == row:
                entry.count = count
                return
        if len(self._entries) < self.num_entries:
            self._entries.append(AttEntry(row=row, count=count))
            return
        # Reuse an invalidated slot if one exists.
        for entry in self._entries:
            if not entry.valid:
                entry.row = row
                entry.count = count
                entry.valid = True
                return
        lowest = min(self._entries, key=lambda e: e.count)
        if count > lowest.count:
            lowest.row = row
            lowest.count = count

    def max_entry(self) -> Optional[AttEntry]:
        """Return the valid entry with the maximum count (or None)."""
        valid = [entry for entry in self._entries if entry.valid]
        if not valid:
            return None
        return max(valid, key=lambda e: e.count)

    def invalidate(self, row: int) -> None:
        """Invalidate the entry tracking ``row`` (after its victims refresh)."""
        for entry in self._entries:
            if entry.valid and entry.row == row:
                entry.valid = False
                return

    def valid_entries(self) -> List[AttEntry]:
        """Return all valid entries (highest count first)."""
        return sorted(
            (entry for entry in self._entries if entry.valid),
            key=lambda e: e.count,
            reverse=True,
        )

    def tracked_rows(self) -> List[int]:
        """Rows currently tracked by valid entries."""
        return [entry.row for entry in self._entries if entry.valid]

    def clear(self) -> None:
        """Invalidate every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len([entry for entry in self._entries if entry.valid])
