"""Per-row activation counter storage.

Both PRAC and Chronus maintain one activation counter per DRAM row.  PRAC
stores the counter bits inside the data row itself and updates them while the
row is being closed (which inflates tRP/tRC -- Table 1).  Chronus stores the
counters in a dedicated *counter subarray* per bank and updates them with the
decrementer circuit concurrently with the data access (§7.1), which is why it
keeps the baseline timings.

This module provides:

* :class:`PerRowCounters` -- a per-bank, per-row activation counter store,
* :class:`CounterSubarray` -- Chronus' counter-subarray geometry and capacity
  accounting (rows / bytes used, 0.05 % capacity overhead claim),
* :class:`AggressorTrackingTable` -- the small per-bank table used to find
  the rows with the highest activation counts during an RFM (§3).

Counter-store backends
----------------------

Every store comes in two interchangeable backends selected by the
``backend`` constructor argument (see :func:`resolve_backend`):

* ``"dict"`` -- the original sparse mapping layout (simple, the reference
  implementation the equivalence tests compare against), and
* ``"array"`` -- flat per-bank arrays with explicit insertion-order
  bookkeeping and slot/freelist storage, the default.  Reads and increments
  are plain list indexing instead of hashing, and
  :meth:`PerRowCounters.rows_at_or_above` answers its common negative case
  in O(1) from power-of-two *threshold buckets* (a 64-entry histogram of
  counter bit-lengths: no bucket at or above ``threshold.bit_length()``
  occupied means no counter can reach ``threshold``).

The two backends are *observably identical* -- same values, same victim
sets, same iteration and eviction order (ties broken by insertion order,
exactly like dict iteration) -- which the property tests in
``tests/test_counter_backends.py`` pin, and which lets cached simulation
results stay byte-for-byte stable across backends.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Backend names accepted by every counter store in :mod:`repro.core`.
COUNTER_BACKENDS: Tuple[str, ...] = ("dict", "array")

#: Environment variable overriding the default backend (debugging aid).
COUNTER_BACKEND_ENV = "REPRO_COUNTER_BACKEND"

#: The default backend: flat arrays.
DEFAULT_COUNTER_BACKEND = "array"


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a ``backend`` constructor argument to a concrete name.

    ``None`` selects ``$REPRO_COUNTER_BACKEND`` when set, otherwise
    :data:`DEFAULT_COUNTER_BACKEND`.
    """
    if backend is None:
        backend = os.environ.get(COUNTER_BACKEND_ENV) or DEFAULT_COUNTER_BACKEND
    if backend not in COUNTER_BACKENDS:
        raise ValueError(
            f"unknown counter backend {backend!r}; expected one of {COUNTER_BACKENDS}"
        )
    return backend


class PerRowCounters:
    """Per-bank, per-row activation counters.

    A real device allocates a counter for every row; the simulator only
    materialises state for activated rows.  Constructing this class returns
    the implementation selected by ``backend`` (both are subclasses, so
    ``isinstance(store, PerRowCounters)`` holds either way).
    """

    #: Concrete backend name ("dict" or "array"), set on the subclasses.
    backend = "abstract"

    def __new__(cls, num_banks: int, backend: Optional[str] = None):
        if cls is PerRowCounters:
            cls = (
                _ArrayPerRowCounters
                if resolve_backend(backend) == "array"
                else _DictPerRowCounters
            )
        return object.__new__(cls)

    def __init__(self, num_banks: int, backend: Optional[str] = None) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks

    # -- interface (implemented by both backends) ------------------------ #
    def increment(self, bank_id: int, row: int) -> int:
        """Increment and return the activation count of (bank, row)."""
        raise NotImplementedError

    def get(self, bank_id: int, row: int) -> int:
        """Return the activation count of (bank, row)."""
        raise NotImplementedError

    def reset_row(self, bank_id: int, row: int) -> None:
        """Reset the counter of a single row (after its victims are refreshed)."""
        raise NotImplementedError

    def reset_bank(self, bank_id: int) -> None:
        """Reset all counters of a bank."""
        raise NotImplementedError

    def reset_all(self) -> None:
        """Reset every counter (refresh-window boundary)."""
        for bank_id in range(self.num_banks):
            self.reset_bank(bank_id)

    def rows_at_or_above(self, bank_id: int, threshold: int) -> List[int]:
        """Rows of a bank whose count is >= threshold (insertion order)."""
        raise NotImplementedError

    def max_row(self, bank_id: int) -> Optional[Tuple[int, int]]:
        """Return (row, count) with the maximum count in a bank, or None."""
        raise NotImplementedError

    def nonzero_rows(self, bank_id: int) -> int:
        """Number of rows with a non-zero counter in a bank."""
        raise NotImplementedError

    def iter_bank(self, bank_id: int) -> Iterator[Tuple[int, int]]:
        """Iterate over (row, count) pairs of a bank (insertion order)."""
        raise NotImplementedError

    # -- batch-mode buffer pooling (array backend only) ------------------- #
    def adopt_count_buffers(self, buffers: List[List[int]]) -> None:
        """Adopt preallocated all-zero per-bank count arrays (array backend).

        The batch engine sizes the arrays from the sweep's decoded trace
        rows, so the lazy power-of-two growth never runs during the
        simulation, and recycles them across the configs of a batch group.
        Capacity is unobservable (``reset_bank`` touches only live rows), so
        an adopted store is byte-identical to a freshly grown one.
        """
        raise NotImplementedError(f"{self.backend!r} backend does not pool buffers")

    def release_count_buffers(self) -> List[List[int]]:
        """Reset every counter and detach the per-bank arrays for reuse."""
        raise NotImplementedError(f"{self.backend!r} backend does not pool buffers")


class _DictPerRowCounters(PerRowCounters):
    """The original sparse ``Dict[int, int]`` backend (reference layout)."""

    backend = "dict"

    def __init__(self, num_banks: int, backend: Optional[str] = None) -> None:
        super().__init__(num_banks)
        self._counters: List[Dict[int, int]] = [dict() for _ in range(num_banks)]

    def increment(self, bank_id: int, row: int) -> int:
        counters = self._counters[bank_id]
        value = counters.get(row, 0) + 1
        counters[row] = value
        return value

    def get(self, bank_id: int, row: int) -> int:
        return self._counters[bank_id].get(row, 0)

    def reset_row(self, bank_id: int, row: int) -> None:
        self._counters[bank_id].pop(row, None)

    def reset_bank(self, bank_id: int) -> None:
        self._counters[bank_id].clear()

    def reset_all(self) -> None:
        for counters in self._counters:
            counters.clear()

    def rows_at_or_above(self, bank_id: int, threshold: int) -> List[int]:
        return [row for row, count in self._counters[bank_id].items() if count >= threshold]

    def max_row(self, bank_id: int) -> Optional[Tuple[int, int]]:
        counters = self._counters[bank_id]
        if not counters:
            return None
        row = max(counters, key=counters.__getitem__)
        return row, counters[row]

    def nonzero_rows(self, bank_id: int) -> int:
        return len(self._counters[bank_id])

    def iter_bank(self, bank_id: int) -> Iterator[Tuple[int, int]]:
        return iter(self._counters[bank_id].items())


#: Width of the per-bank threshold-bucket histogram: counters are Python
#: ints but activation counts stay far below 2**63 in any simulation.
_BUCKET_BITS = 64


class _ArrayPerRowCounters(PerRowCounters):
    """Flat array backend with insertion-order and threshold-bucket indexes.

    Per bank:

    * ``counts`` -- a lazily grown flat list indexed by row (power-of-two
      growth, so a handful of ``extend`` calls cover any trace),
    * ``order`` / ``pos`` -- explicit insertion-order bookkeeping with lazy
      tombstones, replicating dict iteration order exactly (including a
      reset row re-entering at the back on its next activation),
    * ``buckets`` -- the count-bit-length histogram behind the O(1)
      :meth:`rows_at_or_above` negative fast path.
    """

    backend = "array"

    #: Tombstone fraction of the order list that triggers compaction.
    _COMPACT_MIN_HOLES = 16

    def __init__(self, num_banks: int, backend: Optional[str] = None) -> None:
        super().__init__(num_banks)
        self._counts: List[List[int]] = [[] for _ in range(num_banks)]
        # Row -> index into the order list, *active rows only* (a dict: the
        # flat count array spans the whole row space but only a few hundred
        # rows are ever live, so a parallel flat array would double the
        # growth churn for nothing).
        self._pos: List[Dict[int, int]] = [dict() for _ in range(num_banks)]
        self._order: List[List[int]] = [[] for _ in range(num_banks)]
        self._holes: List[int] = [0] * num_banks
        self._active: List[int] = [0] * num_banks
        self._buckets: List[List[int]] = [[0] * _BUCKET_BITS for _ in range(num_banks)]

    def _grow(self, bank_id: int, row: int) -> None:
        counts = self._counts[bank_id]
        size = len(counts)
        new_size = max(row + 1, size * 4, 1024)
        counts.extend([0] * (new_size - size))

    def increment(self, bank_id: int, row: int) -> int:
        counts = self._counts[bank_id]
        if row >= len(counts):
            self._grow(bank_id, row)
            counts = self._counts[bank_id]
        value = counts[row] + 1
        counts[row] = value
        buckets = self._buckets[bank_id]
        if value == 1:
            order = self._order[bank_id]
            self._pos[bank_id][row] = len(order)
            order.append(row)
            self._active[bank_id] += 1
            buckets[1] += 1
        elif not value & (value - 1):
            # The count crossed a power of two: move it up one bucket.
            length = value.bit_length()
            buckets[length - 1] -= 1
            buckets[length] += 1
        return value

    def get(self, bank_id: int, row: int) -> int:
        counts = self._counts[bank_id]
        if row >= len(counts):
            return 0
        return counts[row]

    def reset_row(self, bank_id: int, row: int) -> None:
        counts = self._counts[bank_id]
        if row >= len(counts):
            return
        value = counts[row]
        if not value:
            return
        counts[row] = 0
        self._buckets[bank_id][value.bit_length()] -= 1
        index = self._pos[bank_id].pop(row)
        self._order[bank_id][index] = -1
        self._active[bank_id] -= 1
        holes = self._holes[bank_id] + 1
        self._holes[bank_id] = holes
        order = self._order[bank_id]
        if holes > self._COMPACT_MIN_HOLES and holes * 2 > len(order):
            self._compact(bank_id)

    def _compact(self, bank_id: int) -> None:
        pos = self._pos[bank_id]
        compacted = [row for row in self._order[bank_id] if row >= 0]
        for index, row in enumerate(compacted):
            pos[row] = index
        self._order[bank_id] = compacted
        self._holes[bank_id] = 0

    def reset_bank(self, bank_id: int) -> None:
        counts = self._counts[bank_id]
        for row in self._order[bank_id]:
            if row >= 0:
                counts[row] = 0
        self._pos[bank_id].clear()
        self._order[bank_id] = []
        self._holes[bank_id] = 0
        self._active[bank_id] = 0
        self._buckets[bank_id] = [0] * _BUCKET_BITS

    def rows_at_or_above(self, bank_id: int, threshold: int) -> List[int]:
        if threshold > 0:
            # Threshold buckets: a count >= threshold needs at least
            # threshold.bit_length() bits, so empty upper buckets answer the
            # (common) negative case without touching a single row.
            buckets = self._buckets[bank_id]
            if not any(buckets[threshold.bit_length():]):
                return []
        counts = self._counts[bank_id]
        return [
            row for row in self._order[bank_id]
            if row >= 0 and counts[row] >= threshold
        ]

    def max_row(self, bank_id: int) -> Optional[Tuple[int, int]]:
        counts = self._counts[bank_id]
        best_row = -1
        best_count = 0
        for row in self._order[bank_id]:
            # Strict comparison keeps the first-inserted row on ties,
            # matching max() over dict insertion order.
            if row >= 0 and counts[row] > best_count:
                best_row, best_count = row, counts[row]
        if best_row < 0:
            return None
        return best_row, best_count

    def nonzero_rows(self, bank_id: int) -> int:
        return self._active[bank_id]

    def iter_bank(self, bank_id: int) -> Iterator[Tuple[int, int]]:
        counts = self._counts[bank_id]
        return ((row, counts[row]) for row in self._order[bank_id] if row >= 0)

    def adopt_count_buffers(self, buffers: List[List[int]]) -> None:
        if len(buffers) != self.num_banks:
            raise ValueError(
                f"expected {self.num_banks} per-bank buffers, got {len(buffers)}"
            )
        self._counts = buffers

    def release_count_buffers(self) -> List[List[int]]:
        self.reset_all()
        buffers = self._counts
        self._counts = [[] for _ in range(self.num_banks)]
        return buffers


@dataclass(frozen=True)
class CounterSubarray:
    """Geometry of Chronus' per-bank counter subarray (§7.1).

    The paper's reference configuration stores 8-bit counters for 128K data
    rows of 16 Kbit each, which fits in 64 counter-subarray rows and costs
    0.05 % of the bank's capacity.
    """

    rows_per_bank: int = 131072
    row_size_bits: int = 16384
    counter_width_bits: int = 8

    @property
    def counter_bits_per_bank(self) -> int:
        """Total counter storage needed for one bank, in bits."""
        return self.rows_per_bank * self.counter_width_bits

    @property
    def counter_rows_needed(self) -> int:
        """Number of counter-subarray rows needed to store all counters."""
        bits = self.counter_bits_per_bank
        return -(-bits // self.row_size_bits)  # ceil division

    @property
    def capacity_overhead(self) -> float:
        """Fraction of the bank's capacity consumed by the counter subarray."""
        bank_bits = self.rows_per_bank * self.row_size_bits
        return self.counter_bits_per_bank / bank_bits

    def locate(self, row: int) -> Tuple[int, int]:
        """Map a data-row address to (counter_row, bit_offset) in the subarray.

        Chronus parses the externally provided row address into the counter
        subarray's row / column / byte addresses (§7.1, step "Updating the
        Counters").
        """
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range [0, {self.rows_per_bank})")
        counters_per_row = self.row_size_bits // self.counter_width_bits
        counter_row = row // counters_per_row
        bit_offset = (row % counters_per_row) * self.counter_width_bits
        return counter_row, bit_offset


@dataclass(slots=True)
class AttEntry:
    """One entry of the Aggressor Tracking Table."""

    row: int
    count: int
    valid: bool = True


class AggressorTrackingTable:
    """Per-bank table of the rows with the highest activation counts (§3).

    PRAC cannot search all per-row counters during an RFM, so it keeps a
    small table (4 entries by default, enough for the recovery period's RFM
    commands).  The table is updated on every precharge:

    1. if the precharged row is already tracked, its count is updated;
    2. otherwise, if an entry is invalid, the row is inserted;
    3. otherwise, if the row's count exceeds the entry with the *lowest*
       count, that entry is replaced.

    During an RFM, the entry with the *maximum* count is invalidated and its
    victims refreshed.

    Backends: ``"dict"`` keeps the original list-of-entry-objects layout;
    ``"array"`` (default) keeps parallel row/count/valid slot lists with a
    row-to-slot index (O(1) update instead of a linear scan -- this runs on
    every precharge under PRAC) and a sorted freelist of invalidated slots,
    so slot reuse matches the reference first-invalid-slot scan exactly.
    """

    backend = "abstract"

    def __new__(cls, num_entries: int = 4, backend: Optional[str] = None):
        if cls is AggressorTrackingTable:
            cls = (
                _ArrayAggressorTrackingTable
                if resolve_backend(backend) == "array"
                else _DictAggressorTrackingTable
            )
        return object.__new__(cls)

    def __init__(self, num_entries: int = 4, backend: Optional[str] = None) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries

    # -- interface -------------------------------------------------------- #
    def update(self, row: int, count: int) -> None:
        """Update the table after ``row`` was precharged with ``count``."""
        raise NotImplementedError

    def max_entry(self) -> Optional[AttEntry]:
        """Return the valid entry with the maximum count (or None)."""
        raise NotImplementedError

    def invalidate(self, row: int) -> None:
        """Invalidate the entry tracking ``row`` (after its victims refresh)."""
        raise NotImplementedError

    def valid_entries(self) -> List[AttEntry]:
        """Return all valid entries (highest count first)."""
        raise NotImplementedError

    def tracked_rows(self) -> List[int]:
        """Rows currently tracked by valid entries."""
        raise NotImplementedError

    def clear(self) -> None:
        """Invalidate every entry."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class _DictAggressorTrackingTable(AggressorTrackingTable):
    """The original list-of-:class:`AttEntry` backend (reference layout)."""

    backend = "dict"

    def __init__(self, num_entries: int = 4, backend: Optional[str] = None) -> None:
        super().__init__(num_entries)
        self._entries: List[AttEntry] = []

    def update(self, row: int, count: int) -> None:
        for entry in self._entries:
            if entry.valid and entry.row == row:
                entry.count = count
                return
        if len(self._entries) < self.num_entries:
            self._entries.append(AttEntry(row=row, count=count))
            return
        # Reuse an invalidated slot if one exists.
        for entry in self._entries:
            if not entry.valid:
                entry.row = row
                entry.count = count
                entry.valid = True
                return
        lowest = min(self._entries, key=lambda e: e.count)
        if count > lowest.count:
            lowest.row = row
            lowest.count = count

    def max_entry(self) -> Optional[AttEntry]:
        valid = [entry for entry in self._entries if entry.valid]
        if not valid:
            return None
        return max(valid, key=lambda e: e.count)

    def invalidate(self, row: int) -> None:
        for entry in self._entries:
            if entry.valid and entry.row == row:
                entry.valid = False
                return

    def valid_entries(self) -> List[AttEntry]:
        return sorted(
            (entry for entry in self._entries if entry.valid),
            key=lambda e: e.count,
            reverse=True,
        )

    def tracked_rows(self) -> List[int]:
        return [entry.row for entry in self._entries if entry.valid]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len([entry for entry in self._entries if entry.valid])


class _ArrayAggressorTrackingTable(AggressorTrackingTable):
    """Slot-array backend: parallel lists, row index and sorted freelist."""

    backend = "array"

    def __init__(self, num_entries: int = 4, backend: Optional[str] = None) -> None:
        super().__init__(num_entries)
        self._rows: List[int] = []
        self._counts: List[int] = []
        self._valid: List[bool] = []
        #: Row -> slot index, valid rows only.
        self._slot_of: Dict[int, int] = {}
        #: Invalidated slot indexes, kept sorted so reuse picks the lowest
        #: slot -- identical to the reference first-invalid-slot scan.
        self._free: List[int] = []

    def update(self, row: int, count: int) -> None:
        slot = self._slot_of.get(row)
        if slot is not None:
            self._counts[slot] = count
            return
        rows = self._rows
        if len(rows) < self.num_entries:
            self._slot_of[row] = len(rows)
            rows.append(row)
            self._counts.append(count)
            self._valid.append(True)
            return
        free = self._free
        if free:
            slot = free.pop(0)
            self._slot_of[row] = slot
            rows[slot] = row
            self._counts[slot] = count
            self._valid[slot] = True
            return
        # Full and all valid: replace the minimum entry (first slot on
        # ties, like min() over the reference entry list).
        counts = self._counts
        lowest = min(counts)
        if count > lowest:
            slot = counts.index(lowest)
            del self._slot_of[rows[slot]]
            self._slot_of[row] = slot
            rows[slot] = row
            counts[slot] = count

    def max_entry(self) -> Optional[AttEntry]:
        best_slot = -1
        best_count = 0
        first = True
        counts = self._counts
        valid = self._valid
        for slot in range(len(counts)):
            if not valid[slot]:
                continue
            # Strict comparison keeps the first slot on ties (reference
            # max() behaviour); the very first valid slot always seeds.
            if first or counts[slot] > best_count:
                best_slot, best_count = slot, counts[slot]
                first = False
        if best_slot < 0:
            return None
        return AttEntry(row=self._rows[best_slot], count=best_count)

    def invalidate(self, row: int) -> None:
        slot = self._slot_of.pop(row, None)
        if slot is None:
            return
        self._valid[slot] = False
        free = self._free
        index = len(free)
        while index and free[index - 1] > slot:
            index -= 1
        free.insert(index, slot)

    def valid_entries(self) -> List[AttEntry]:
        entries = [
            AttEntry(row=self._rows[slot], count=self._counts[slot])
            for slot in range(len(self._rows))
            if self._valid[slot]
        ]
        entries.sort(key=lambda e: e.count, reverse=True)  # stable, slot order
        return entries

    def tracked_rows(self) -> List[int]:
        return [
            self._rows[slot]
            for slot in range(len(self._rows))
            if self._valid[slot]
        ]

    def clear(self) -> None:
        self._rows.clear()
        self._counts.clear()
        self._valid.clear()
        self._slot_of.clear()
        self._free.clear()

    def __len__(self) -> int:
        return len(self._slot_of)
