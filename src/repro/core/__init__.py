"""Read-disturbance mitigation mechanisms (the paper's core contribution).

This package implements:

* the industry mechanisms analysed by the paper -- PRFM, PRAC-N and
  PRAC+PRFM (JESD79-5c, April 2024),
* the paper's proposal -- Chronus (Concurrent Counter Update + Chronus
  Back-Off) and its ablation Chronus-PB,
* the academic baselines used for comparison -- Graphene, Hydra, PARA and
  ABACuS,
* the gate-level decrementer circuit of Appendix A.

All mechanisms implement the :class:`~repro.core.mitigation.MitigationMechanism`
interface so that the memory controller and DRAM device remain mechanism
agnostic.
"""

from repro.core.mitigation import (
    ControllerMitigation,
    MitigationMechanism,
    NoMitigation,
    OnDieMitigation,
    PreventiveRefresh,
)
from repro.core.prfm import PRFM
from repro.core.prac import PRAC, AggressorTrackingTable
from repro.core.chronus import Chronus
from repro.core.graphene import Graphene
from repro.core.hydra import Hydra
from repro.core.para import PARA
from repro.core.abacus import ABACuS
from repro.core.decrementer import DecrementerCircuit
from repro.core.factory import build_mechanism, MECHANISM_NAMES

__all__ = [
    "MitigationMechanism",
    "ControllerMitigation",
    "OnDieMitigation",
    "NoMitigation",
    "PreventiveRefresh",
    "PRFM",
    "PRAC",
    "AggressorTrackingTable",
    "Chronus",
    "Graphene",
    "Hydra",
    "PARA",
    "ABACuS",
    "DecrementerCircuit",
    "build_mechanism",
    "MECHANISM_NAMES",
]
