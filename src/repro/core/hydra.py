"""Hydra: hybrid row-activation tracking (Qureshi et al., ISCA 2022).

Hydra keeps exact per-row activation counts at low SRAM cost by splitting the
tracker into three structures:

* **Group Count Table (GCT)** -- an SRAM table in the memory controller with
  one counter per *group* of consecutive rows.  While a group's aggregate
  count stays below the group threshold, no per-row state exists.
* **Row Count Table (RCT)** -- per-row counters stored in a reserved region
  of DRAM.  A group's rows are switched to per-row tracking (initialised
  conservatively to the group threshold) once the group counter saturates.
* **Row Count Cache (RCC)** -- an SRAM cache of recently used RCT entries.
  An RCC miss costs additional DRAM traffic to fetch (and later write back)
  the RCT entry, which is Hydra's main source of slowdown at low ``N_RH``.

When a per-row count reaches the row threshold, the row's victims are
preventively refreshed and its counter resets.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.counters import resolve_backend
from repro.core.mitigation import (
    DEFAULT_BLAST_RADIUS,
    ControllerMitigation,
    PreventiveRefresh,
)


class RowCountCache:
    """A small LRU cache of Row Count Table entries (the RCC)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key: Tuple[int, int]) -> bool:
        """Touch ``key``; return True on hit, False on miss (key inserted)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[key] = 0
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class Hydra(ControllerMitigation):
    """Hydra hybrid tracker."""

    name = "Hydra"

    #: Rows per GCT group (Hydra's default granularity).
    DEFAULT_GROUP_SIZE = 128

    #: RCC capacity in entries (Hydra uses a few-thousand-entry cache).
    DEFAULT_RCC_ENTRIES = 4096

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        group_size: int = DEFAULT_GROUP_SIZE,
        rcc_entries: int = DEFAULT_RCC_ENTRIES,
        group_threshold: Optional[int] = None,
        row_threshold: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        backend: Optional[str] = None,
    ) -> None:
        """Create a Hydra instance.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks.
            group_size: rows per Group Count Table entry.
            rcc_entries: Row Count Cache capacity (entries).
            group_threshold: aggregate activations after which a group moves
                to per-row tracking (defaults to ``nrh / 4``).
            row_threshold: per-row count at which victims are refreshed
                (defaults to ``nrh / 2``).
            blast_radius: victim rows on each side of an aggressor.
            backend: counter-store backend ("dict" keeps the reference
                tuple-keyed mappings; "array" -- the default -- keeps flat
                per-bank GCT/RCT count arrays grown on demand).  The RCC is
                an LRU structure and is shared by both backends.
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.num_banks = num_banks
        self.group_size = group_size
        self.group_threshold = group_threshold if group_threshold is not None else max(1, nrh // 4)
        self.row_threshold = row_threshold if row_threshold is not None else max(1, nrh // 2)
        self.rcc = RowCountCache(rcc_entries)
        self.backend = resolve_backend(backend)

        if self.backend == "array":
            #: Per-bank flat GCT count arrays, indexed by group (lazy growth).
            self._gct_counts: List[List[int]] = [[] for _ in range(num_banks)]
            #: Per-bank sets of promoted (per-row tracked) groups.
            self._tracked: List[set] = [set() for _ in range(num_banks)]
            #: Per-bank flat RCT count arrays, indexed by row (lazy growth).
            #: Only rows of promoted groups are ever read, and those are
            #: explicitly initialised at promotion time.
            self._rct_counts: List[List[int]] = [[] for _ in range(num_banks)]
            self.on_activate = self._on_activate_array  # type: ignore[method-assign]
        else:
            #: Group Count Table: {(bank, group): aggregate count}.
            self._gct: Dict[Tuple[int, int], int] = {}
            #: Groups promoted to per-row tracking.
            self._tracked_groups: set = set()
            #: Row Count Table: {(bank, row): count} (conceptually in DRAM).
            self._rct: Dict[Tuple[int, int], int] = {}
        #: Extra DRAM accesses caused by RCC misses (RCT fetch + write-back).
        self.rct_dram_accesses = 0

    # ------------------------------------------------------------------ #
    # Observation hooks -- dict backend (reference)
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        group_key = (bank_id, row // self.group_size)
        if group_key not in self._tracked_groups:
            count = self._gct.get(group_key, 0) + 1
            self._gct[group_key] = count
            if count >= self.group_threshold:
                self._promote_group(group_key)
            return
        self._track_row(bank_id, row)

    def _promote_group(self, group_key: Tuple[int, int]) -> None:
        """Switch a group to per-row tracking (rows start at the group count)."""
        self._tracked_groups.add(group_key)
        bank_id, group = group_key
        base_row = group * self.group_size
        for offset in range(self.group_size):
            self._rct[(bank_id, base_row + offset)] = self.group_threshold

    def _track_row(self, bank_id: int, row: int) -> None:
        key = (bank_id, row)
        if not self.rcc.access(key):
            # RCC miss: the RCT entry must be fetched from DRAM and later
            # written back.  The controller serves this as a one-row
            # maintenance access that occupies the bank.
            self.rct_dram_accesses += 1
            self.queue_refresh(
                PreventiveRefresh(bank_id=bank_id, aggressor_row=row, num_rows=1)
            )
        count = self._rct.get(key, self.group_threshold) + 1
        self._rct[key] = count
        if count >= self.row_threshold:
            self._rct[key] = 0
            self.queue_refresh(
                PreventiveRefresh(
                    bank_id=bank_id,
                    aggressor_row=row,
                    num_rows=self.victim_rows_per_aggressor,
                )
            )

    # ------------------------------------------------------------------ #
    # Observation hooks -- array backend (flat per-bank count arrays)
    # ------------------------------------------------------------------ #
    def _on_activate_array(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        group = row // self.group_size
        tracked = self._tracked[bank_id]
        if group not in tracked:
            gct = self._gct_counts[bank_id]
            if group >= len(gct):
                gct.extend([0] * (max(group + 1, len(gct) * 2, 64) - len(gct)))
            count = gct[group] + 1
            gct[group] = count
            if count >= self.group_threshold:
                tracked.add(group)
                rct = self._rct_counts[bank_id]
                base_row = group * self.group_size
                end = base_row + self.group_size
                if end > len(rct):
                    rct.extend([0] * (max(end, len(rct) * 2, 64) - len(rct)))
                threshold = self.group_threshold
                for tracked_row in range(base_row, end):
                    rct[tracked_row] = threshold
            return
        if not self.rcc.access((bank_id, row)):
            self.rct_dram_accesses += 1
            self.queue_refresh(
                PreventiveRefresh(bank_id=bank_id, aggressor_row=row, num_rows=1)
            )
        rct = self._rct_counts[bank_id]
        count = rct[row] + 1
        if count >= self.row_threshold:
            rct[row] = 0
            self.queue_refresh(
                PreventiveRefresh(
                    bank_id=bank_id,
                    aggressor_row=row,
                    num_rows=self.victim_rows_per_aggressor,
                )
            )
        else:
            rct[row] = count

    def on_refresh_window(self, cycle: int) -> None:
        self._reset_tables()
        self.rcc.clear()

    def _reset_tables(self) -> None:
        if self.backend == "array":
            self._gct_counts = [[] for _ in range(self.num_banks)]
            self._tracked = [set() for _ in range(self.num_banks)]
            self._rct_counts = [[] for _ in range(self.num_banks)]
        else:
            self._gct.clear()
            self._tracked_groups.clear()
            self._rct.clear()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def iter_count_values(self):
        """Every GCT / RCT count currently held (backend-agnostic view)."""
        if self.backend == "array":
            for gct in self._gct_counts:
                yield from gct
            for rct in self._rct_counts:
                yield from rct
        else:
            yield from self._gct.values()
            yield from self._rct.values()

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """Hydra stores the RCT in DRAM and the GCT + RCC in controller SRAM."""
        count_bits = max(1, math.ceil(math.log2(max(2, self.row_threshold)))) + 1
        dram_bits = num_banks * rows_per_bank * count_bits
        groups = num_banks * math.ceil(rows_per_bank / self.group_size)
        gct_bits = groups * count_bits
        row_bits = max(1, math.ceil(math.log2(rows_per_bank * num_banks)))
        rcc_bits = self.rcc.capacity * (row_bits + count_bits)
        return {"dram_bits": dram_bits, "sram_bits": gct_bits + rcc_bits}

    def reset(self) -> None:
        super().reset()
        self._reset_tables()
        self.rcc.clear()
        self.rct_dram_accesses = 0
