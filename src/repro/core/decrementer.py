"""Gate-level model of Chronus' decrementer circuit (Appendix A).

Chronus updates a row's activation state with custom circuitry built from
gates that already exist in DRAM local sense amplifiers.  The circuit
decrements an 8-bit value by one; a back-off is triggered when the value
reaches zero.  Appendix A (Table 3) gives the gate-level implementation:

=================================  ====  ====  =====  ====  ====
Logical expression                  NOT   MUX   NAND   NOR   #Ts
=================================  ====  ====  =====  ====  ====
``y0 = !x0``                          1     0      0     0     2
``y1 = x0 ? x1 : !x1``                1     1      0     0    10
``y2 = nor(x0,x1) ? !x2 : x2``        1     1      0     1    14
``yi = nand(y[i-1], !x[i-1]) ?
x[i] : !x[i]`` (i = 3..7)             1     1      1     0    14
=================================  ====  ====  =====  ====  ====
Total: 21 gates, 96 transistors.

The evaluation below mirrors the circuit gate-for-gate (rather than simply
computing ``(x - 1) % 256``) so that the test-suite can check the published
gate and transistor counts *and* functional correctness independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


#: Transistor cost per gate type (CMOS, as used by Appendix A's totals).
TRANSISTORS_PER_GATE: Dict[str, int] = {"NOT": 2, "MUX": 8, "NAND": 4, "NOR": 4}

#: Critical-path delay reported by the paper's Synopsys DC evaluation (ns),
#: including the 22.91 % DRAM-process latency penalty.
CRITICAL_PATH_DELAY_NS = 0.627


@dataclass
class GateCounts:
    """Gate-usage tally of one circuit evaluation or of the static design."""

    NOT: int = 0
    MUX: int = 0
    NAND: int = 0
    NOR: int = 0

    @property
    def total_gates(self) -> int:
        return self.NOT + self.MUX + self.NAND + self.NOR

    @property
    def total_transistors(self) -> int:
        return (
            self.NOT * TRANSISTORS_PER_GATE["NOT"]
            + self.MUX * TRANSISTORS_PER_GATE["MUX"]
            + self.NAND * TRANSISTORS_PER_GATE["NAND"]
            + self.NOR * TRANSISTORS_PER_GATE["NOR"]
        )


class DecrementerCircuit:
    """Functional, gate-accurate model of the 8-bit decrementer."""

    WIDTH = 8

    def __init__(self) -> None:
        self.static_gates = GateCounts(NOT=8, MUX=7, NAND=5, NOR=1)

    # -- gate primitives -------------------------------------------------- #
    @staticmethod
    def _not(a: int) -> int:
        return 1 - a

    @staticmethod
    def _nand(a: int, b: int) -> int:
        return 1 - (a & b)

    @staticmethod
    def _nor(a: int, b: int) -> int:
        return 1 - (a | b)

    @staticmethod
    def _mux(select: int, when_one: int, when_zero: int) -> int:
        return when_one if select else when_zero

    # -- circuit ----------------------------------------------------------- #
    def evaluate(self, value: int) -> int:
        """Return ``(value - 1) mod 256`` computed through the gate network."""
        if not 0 <= value < (1 << self.WIDTH):
            raise ValueError(f"value {value} does not fit in {self.WIDTH} bits")
        x = [(value >> i) & 1 for i in range(self.WIDTH)]
        y: List[int] = [0] * self.WIDTH

        # Bit 0: y0 = !x0
        y[0] = self._not(x[0])

        # Bit 1: y1 = x0 ? x1 : !x1
        y[1] = self._mux(x[0], x[1], self._not(x[1]))

        # Bit 2: y2 = nor(x0, x1) ? !x2 : x2
        y[2] = self._mux(self._nor(x[0], x[1]), self._not(x[2]), x[2])

        # Bits 3..7: yi = nand(y[i-1], !x[i-1]) ? x[i] : !x[i]
        # nand(y[i-1], !x[i-1]) is the *inverted* borrow into bit i.
        for i in range(3, self.WIDTH):
            no_borrow = self._nand(y[i - 1], self._not(x[i - 1]))
            y[i] = self._mux(no_borrow, x[i], self._not(x[i]))

        return sum(bit << i for i, bit in enumerate(y))

    def decrement(self, value: int) -> int:
        """Alias for :meth:`evaluate`."""
        return self.evaluate(value)

    # -- reporting ---------------------------------------------------------- #
    @property
    def gate_count(self) -> int:
        """Total gates in the design (21 in the paper)."""
        return self.static_gates.total_gates

    @property
    def transistor_count(self) -> int:
        """Total transistors in the design (96 in the paper)."""
        return self.static_gates.total_transistors

    @property
    def critical_path_delay_ns(self) -> float:
        """Critical-path delay (0.627 ns per the paper's DC evaluation)."""
        return CRITICAL_PATH_DELAY_NS

    def fits_within_row_cycle(self, trc_ns: float = 47.0) -> bool:
        """True if the counter update hides within one row cycle (tRC)."""
        return self.critical_path_delay_ns < trc_ns

    def table_rows(self) -> List[Dict[str, int]]:
        """Return the per-output-bit gate usage rows of Appendix A, Table 3."""
        rows = [
            {"output": "y0", "NOT": 1, "MUX": 0, "NAND": 0, "NOR": 0, "transistors": 2},
            {"output": "y1", "NOT": 1, "MUX": 1, "NAND": 0, "NOR": 0, "transistors": 10},
            {"output": "y2", "NOT": 1, "MUX": 1, "NAND": 0, "NOR": 1, "transistors": 14},
        ]
        for i in range(3, self.WIDTH):
            rows.append(
                {"output": f"y{i}", "NOT": 1, "MUX": 1, "NAND": 1, "NOR": 0, "transistors": 14}
            )
        return rows
