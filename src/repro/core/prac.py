"""PRAC: Per Row Activation Counting (JESD79-5c, April 2024).

PRAC is the industry's on-DRAM-die read-disturbance mitigation framework:

* every DRAM row has an activation counter, incremented while the row is
  being *closed* (which inflates tRP / tRC -- Table 1 of the paper, modelled
  by the PRAC timing preset);
* when a row's counter reaches the back-off threshold ``NBO``, the device
  asserts the ``alert_n`` back-off signal;
* the memory controller may keep serving requests for a *window of normal
  traffic* (tABOACT), then must issue ``NRef`` back-to-back RFM commands (the
  *recovery period*);
* after the recovery period the device cannot re-assert the back-off until it
  receives ``NDelay`` activate commands (the *delay period*).

The fixed number of RFMs per back-off plus the delay period are exactly the
weaknesses (L2 / L3 in the paper's Fig. 6) that make PRAC vulnerable to the
wave attack and force conservative (small ``NBO``) configurations.

This module also implements the Aggressor Tracking Table (ATT) the paper
assumes: a small per-bank table that tracks the rows with the highest
activation counts so the device knows which victims to refresh during an RFM.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    SecurityParameters,
    att_required_entries,
    secure_prac_backoff_threshold,
)
from repro.core.counters import (
    AggressorTrackingTable,
    PerRowCounters,
    resolve_backend,
)
from repro.core.mitigation import DEFAULT_BLAST_RADIUS, OnDieMitigation


class PRAC(OnDieMitigation):
    """PRAC-N: per-row activation counting with the DDR5 back-off protocol."""

    requires_prac_timings = True

    #: PRAC reads, modifies and writes the in-row counter on every precharge,
    #: which costs roughly the same additional array energy per row access as
    #: Chronus' counter-subarray update.
    act_energy_multiplier = 1.1907

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        nref: int = 4,
        nbo: Optional[int] = None,
        ndelay: Optional[int] = None,
        att_entries: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        borrowed_refresh: bool = True,
        security_params: SecurityParameters = DEFAULT_PARAMETERS,
        allow_insecure: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        """Create a PRAC-N instance.

        Args:
            nrh: RowHammer threshold the device must defend against.
            num_banks: number of banks in the channel.
            nref: RFM commands issued per back-off (1, 2 or 4).
            nbo: back-off threshold (absolute activation count).  If ``None``
                the largest threshold that is secure against the wave attack
                (per the §5 analysis) is used.
            ndelay: activations required before a new back-off may be
                asserted; defaults to ``nref`` as in the specification.
            att_entries: Aggressor Tracking Table size; defaults to the
                secure minimum (``Anormal + 1``).
            blast_radius: victim rows on each side of an aggressor.
            borrowed_refresh: if True, the device transparently refreshes the
                victims of one tracked aggressor per bank every other
                periodic REF (§5).
            security_params: physical parameters for the secure-configuration
                search.
            allow_insecure: if True and no secure ``NBO`` exists for ``nrh``,
                fall back to the most aggressive configuration (``NBO = 1``)
                and set :attr:`is_secure` to False instead of raising.
            backend: counter-store backend ("dict" / "array"; None resolves
                to the module default, array) for the per-row counters and
                the Aggressor Tracking Tables.
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if nref <= 0:
            raise ValueError("nref must be positive")
        self.num_banks = num_banks
        self.nref = nref
        self.ndelay = nref if ndelay is None else ndelay
        self.borrowed_refresh = borrowed_refresh
        self.security_params = security_params
        self.is_secure = True

        if nbo is None:
            try:
                nbo = secure_prac_backoff_threshold(nrh, nref, params=security_params)
            except ValueError:
                if not allow_insecure:
                    raise
                nbo = 1
                self.is_secure = False
        self.nbo = nbo

        if att_entries is None:
            att_entries = att_required_entries(security_params, prac_timings=True)
        self.att_entries = att_entries

        self.name = f"PRAC-{nref}"
        self.backend = resolve_backend(backend)
        self.counters = PerRowCounters(num_banks, backend=self.backend)
        self.att: List[AggressorTrackingTable] = [
            AggressorTrackingTable(att_entries, backend=self.backend)
            for _ in range(num_banks)
        ]

        # Back-off protocol state.
        self._backoff = False
        self._rfms_in_recovery = 0
        self._delay_acts_remaining = 0
        self._borrow_toggle = False

    # ------------------------------------------------------------------ #
    # Observation hooks
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        if self._delay_acts_remaining > 0:
            self._delay_acts_remaining -= 1
            if self._delay_acts_remaining == 0:
                self._maybe_reassert()

    def on_precharge(self, bank_id: int, row: int, cycle: int) -> None:
        count = self.counters.increment(bank_id, row)
        self.att[bank_id].update(row, count)
        if count >= self.nbo:
            self._assert_backoff()

    def on_periodic_refresh(self, bank_ids: List[int], cycle: int) -> None:
        if not self.borrowed_refresh:
            return
        self._borrow_toggle = not self._borrow_toggle
        if not self._borrow_toggle:
            return
        for bank_id in bank_ids:
            entry = self.att[bank_id].max_entry()
            if entry is None or entry.count == 0:
                continue
            self.counters.reset_row(bank_id, entry.row)
            self.att[bank_id].invalidate(entry.row)
            self.stats.borrowed_refreshes += self.victim_rows_per_aggressor
            self.notify_victims_refreshed(
                bank_id, entry.row, self.victim_rows_per_aggressor, cycle
            )

    def on_refresh_window(self, cycle: int) -> None:
        self.counters.reset_all()
        for att in self.att:
            att.clear()

    # ------------------------------------------------------------------ #
    # Back-off protocol
    # ------------------------------------------------------------------ #
    def _assert_backoff(self) -> None:
        if self._backoff or self._delay_acts_remaining > 0:
            return
        self._backoff = True
        self._rfms_in_recovery = 0
        self.stats.backoffs += 1

    def _maybe_reassert(self) -> None:
        """Re-assert the back-off if a tracked row still exceeds ``NBO``."""
        for bank_id in range(self.num_banks):
            entry = self.att[bank_id].max_entry()
            if entry is not None and entry.count >= self.nbo:
                self._assert_backoff()
                return

    def backoff_asserted(self) -> bool:
        return self._backoff

    def wants_more_rfm(self) -> bool:
        return self._backoff and self._rfms_in_recovery < self.nref

    def on_rfm(self, bank_ids: List[int], cycle: int) -> int:
        """Serve one RFM of the recovery period.

        Refreshes the victims of the maximum-count ATT entry in every covered
        bank, then advances the recovery state; after ``NRef`` RFMs the
        back-off is de-asserted and the delay period begins.
        """
        refreshed_rows = 0
        for bank_id in bank_ids:
            entry = self.att[bank_id].max_entry()
            if entry is None:
                continue
            self.counters.reset_row(bank_id, entry.row)
            self.att[bank_id].invalidate(entry.row)
            refreshed_rows += self.victim_rows_per_aggressor
            self.notify_victims_refreshed(
                bank_id, entry.row, self.victim_rows_per_aggressor, cycle
            )
        self.stats.rfm_commands += 1
        self.stats.preventive_refresh_rows += refreshed_rows
        if self._backoff:
            self._rfms_in_recovery += 1
            if self._rfms_in_recovery >= self.nref:
                self._backoff = False
                self._rfms_in_recovery = 0
                self._delay_acts_remaining = self.ndelay
        return refreshed_rows

    def activations_until_next_backoff(self) -> Optional[int]:
        return self._delay_acts_remaining if self._delay_acts_remaining > 0 else None

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """PRAC keeps one counter per row in DRAM (width scales with N_RH)."""
        counter_bits = counter_width_bits(self.nrh)
        return {"dram_bits": num_banks * rows_per_bank * counter_bits}

    def reset(self) -> None:
        super().reset()
        self.counters.reset_all()
        for att in self.att:
            att.clear()
        self._backoff = False
        self._rfms_in_recovery = 0
        self._delay_acts_remaining = 0
        self._borrow_toggle = False


def counter_width_bits(nrh: int) -> int:
    """Activation-counter width needed to count up to ``N_RH`` safely.

    One extra bit is kept beyond ``ceil(log2(N_RH))`` so the counter cannot
    silently wrap between preventive refreshes (matching the storage figures:
    11 bits at ``N_RH`` = 1K, 6 bits at ``N_RH`` = 20).
    """
    if nrh <= 0:
        raise ValueError("nrh must be positive")
    return max(1, math.ceil(math.log2(nrh))) + 1
