"""Graphene: Misra-Gries frequent-item tracking in the memory controller.

Graphene (Park et al., MICRO 2020) keeps, for every bank, a small table of
(row address, counter) pairs managed with the Misra-Gries frequent-element
algorithm plus a *spillover counter*.  The table is provisioned so that any
row activated more than the mitigation threshold within a reset window is
guaranteed to be tracked.  When a tracked row's estimated count crosses a
multiple of the threshold, the victims of that row are preventively
refreshed.

Graphene provides deterministic protection, but its table must grow inversely
with ``N_RH`` and it is implemented with content-addressable memory in the
memory controller, which is why its storage cost explodes at low thresholds
(50.3x growth from ``N_RH`` = 1K to 20 in Fig. 11).

Table backends: :class:`MisraGriesTable` (the ``"dict"`` reference layout,
also what direct ``MisraGriesTable(...)`` construction returns) and
:class:`ArrayMisraGriesTable` (``"array"``: index-slot storage -- parallel
row/count/trigger lists with a row-to-slot index, a freelist and per-slot
insertion stamps so evictions break count ties exactly like dict insertion
order).  :class:`Graphene` selects per the ``backend`` argument
(:func:`repro.core.counters.resolve_backend`; array by default) and drives
both through the shared ``observe_triggered`` hot-path API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.counters import resolve_backend
from repro.core.mitigation import (
    DEFAULT_BLAST_RADIUS,
    ControllerMitigation,
    PreventiveRefresh,
)


@dataclass(slots=True)
class GrapheneEntry:
    """One Misra-Gries table entry."""

    row: int
    count: int
    #: Count value at which the last preventive refresh was triggered.
    last_trigger: int = 0


class MisraGriesTable:
    """A Misra-Gries summary with a spillover counter (one per bank).

    This is the ``"dict"`` reference backend; its update rule and iteration
    order define the behaviour the array backend must reproduce.
    """

    backend = "dict"

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.entries: Dict[int, GrapheneEntry] = {}
        self.spillover = 0

    def observe(self, row: int) -> GrapheneEntry:
        """Record one activation of ``row`` and return its table entry.

        Implements the Graphene update rule: tracked rows increment their
        counter; untracked rows either claim an empty slot (starting from the
        spillover count) or increment the spillover counter and replace the
        minimum entry once the spillover catches up with it.
        """
        entry = self.entries.get(row)
        if entry is not None:
            entry.count += 1
            return entry
        if len(self.entries) < self.num_entries:
            entry = GrapheneEntry(row=row, count=self.spillover + 1,
                                  last_trigger=self.spillover)
            self.entries[row] = entry
            return entry
        self.spillover += 1
        min_row = min(self.entries, key=lambda r: self.entries[r].count)
        min_entry = self.entries[min_row]
        if self.spillover >= min_entry.count:
            # Swap: the new row inherits the spillover count; the evicted
            # row's count becomes the new spillover value.
            del self.entries[min_row]
            self.spillover, inherited = min_entry.count, self.spillover
            entry = GrapheneEntry(row=row, count=inherited + 1,
                                  last_trigger=inherited)
            self.entries[row] = entry
            return entry
        # The activation is absorbed by the spillover counter: the count
        # estimate of this row is the spillover value itself.
        return GrapheneEntry(row=row, count=self.spillover, last_trigger=self.spillover)

    def observe_triggered(self, row: int, trigger_threshold: int) -> Tuple[int, bool]:
        """Observe ``row``; report (count, whether a refresh must trigger).

        A trigger fires when the entry's count advanced ``trigger_threshold``
        past its last trigger point, which is then reset -- the shared
        hot-path API both backends implement.
        """
        entry = self.observe(row)
        if entry.count - entry.last_trigger >= trigger_threshold:
            entry.last_trigger = entry.count
            return entry.count, True
        return entry.count, False

    def max_count(self) -> int:
        """Maximum tracked count (0 for an empty table)."""
        if not self.entries:
            return 0
        return max(entry.count for entry in self.entries.values())

    def reset(self) -> None:
        self.entries.clear()
        self.spillover = 0


class ArrayMisraGriesTable:
    """Index-slot Misra-Gries backend (``"array"``).

    Parallel ``rows`` / ``counts`` / ``last_trigger`` / ``seq`` lists plus a
    row-to-slot index.  Slots are allocated by *appending* -- the table is
    provisioned for ``window / threshold`` entries but benign workloads
    rarely fill it, so storage tracks the occupied prefix instead of
    pre-allocating (and re-allocating on every reset) the full capacity.
    Misra-Gries never frees an individual entry: eviction replaces a slot
    in place once the table is full, so every allocated slot is always
    live.  ``seq`` stamps each insertion with a monotonically increasing
    sequence number: the eviction scan picks the minimum count and breaks
    ties by the smallest stamp, which is exactly the first-inserted entry
    that ``min()`` over dict iteration order returns in the reference
    backend.
    """

    backend = "array"

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.spillover = 0
        self._rows: List[int] = []
        self._counts: List[int] = []
        self._last_trigger: List[int] = []
        self._seq: List[int] = []
        self._slot_of: Dict[int, int] = {}
        self._next_seq = 0

    def observe_triggered(self, row: int, trigger_threshold: int) -> Tuple[int, bool]:
        """Array-backed equivalent of :meth:`MisraGriesTable.observe_triggered`."""
        slot = self._slot_of.get(row)
        counts = self._counts
        if slot is None:
            if len(counts) < self.num_entries:
                slot = len(counts)
                self._append(row, self.spillover + 1, self.spillover)
            else:
                self.spillover += 1
                spill = self.spillover
                lowest = min(counts)
                if spill < lowest:
                    # Absorbed by the spillover counter: the ephemeral
                    # estimate equals the spillover, so the trigger delta is
                    # zero and no refresh can fire.
                    return spill, False
                slot = self._evict_slot(lowest)
                del self._slot_of[self._rows[slot]]
                # Swap: the evicted count becomes the spillover; the new row
                # inherits the old spillover (+1 for this activation).
                self.spillover, inherited = lowest, spill
                self._install(slot, row, inherited + 1, inherited)
            count = counts[slot]
        else:
            count = counts[slot] + 1
            counts[slot] = count
        if count - self._last_trigger[slot] >= trigger_threshold:
            self._last_trigger[slot] = count
            return count, True
        return count, False

    def _append(self, row: int, count: int, last_trigger: int) -> None:
        self._slot_of[row] = len(self._rows)
        self._rows.append(row)
        self._counts.append(count)
        self._last_trigger.append(last_trigger)
        self._seq.append(self._next_seq)
        self._next_seq += 1

    def _install(self, slot: int, row: int, count: int, last_trigger: int) -> None:
        self._slot_of[row] = slot
        self._rows[slot] = row
        self._counts[slot] = count
        self._last_trigger[slot] = last_trigger
        self._seq[slot] = self._next_seq
        self._next_seq += 1

    def _evict_slot(self, lowest: int) -> int:
        """Slot holding ``lowest`` with the smallest insertion stamp."""
        counts = self._counts
        slot = counts.index(lowest)
        if counts.count(lowest) > 1:
            seq = self._seq
            for other in range(slot + 1, len(counts)):
                if counts[other] == lowest and seq[other] < seq[slot]:
                    slot = other
        return slot

    @property
    def entries(self) -> Dict[int, GrapheneEntry]:
        """Dict-shaped snapshot of the tracked rows (tests / inspection)."""
        return {
            row: GrapheneEntry(
                row=row,
                count=self._counts[slot],
                last_trigger=self._last_trigger[slot],
            )
            for row, slot in self._slot_of.items()
        }

    def max_count(self) -> int:
        """Maximum tracked count (0 for an empty table)."""
        if not self._counts:
            return 0
        return max(self._counts)

    def reset(self) -> None:
        self.spillover = 0
        self._rows.clear()
        self._counts.clear()
        self._last_trigger.clear()
        self._seq.clear()
        self._slot_of.clear()
        self._next_seq = 0


def make_misra_gries_table(num_entries: int, backend: Optional[str] = None):
    """Build a Misra-Gries table for the resolved ``backend``."""
    if resolve_backend(backend) == "array":
        return ArrayMisraGriesTable(num_entries)
    return MisraGriesTable(num_entries)


def graphene_table_entries(nrh: int, reset_window_activations: int) -> int:
    """Number of Misra-Gries entries Graphene needs per bank.

    Graphene guarantees that any row activated ``threshold`` times within the
    reset window is tracked as long as the table has at least
    ``window / threshold`` entries (Misra-Gries error bound).
    """
    threshold = graphene_trigger_threshold(nrh)
    return max(1, math.ceil(reset_window_activations / threshold) + 1)


def graphene_trigger_threshold(nrh: int) -> int:
    """Activation-count granularity at which victims are refreshed."""
    return max(1, nrh // 2)


class Graphene(ControllerMitigation):
    """Graphene read-disturbance mitigation (per-bank Misra-Gries tables)."""

    name = "Graphene"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        reset_window_activations: Optional[int] = None,
        table_entries: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        backend: Optional[str] = None,
    ) -> None:
        """Create a Graphene instance.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks (one table per bank).
            reset_window_activations: maximum activations a bank can receive
                within one table reset window; defaults to half a refresh
                window of back-to-back activations (tREFW / 2 / tRC), the
                provisioning the storage model also uses.
            table_entries: override the table size (otherwise derived from
                ``nrh`` and the reset window).
            blast_radius: victim rows on each side of an aggressor.
            backend: counter-store backend ("dict" / "array"; None resolves
                to the module default, array).
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        if reset_window_activations is None:
            reset_window_activations = int(32_000_000 / 2 / 47)
        self.reset_window_activations = reset_window_activations
        self.trigger_threshold = graphene_trigger_threshold(nrh)
        if table_entries is None:
            table_entries = graphene_table_entries(nrh, reset_window_activations)
        self.table_entries = table_entries
        self.backend = resolve_backend(backend)
        self.tables = [
            make_misra_gries_table(table_entries, self.backend)
            for _ in range(num_banks)
        ]

    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        _, triggered = self.tables[bank_id].observe_triggered(
            row, self.trigger_threshold
        )
        if triggered:
            self.queue_refresh(
                PreventiveRefresh(
                    bank_id=bank_id,
                    aggressor_row=row,
                    num_rows=self.victim_rows_per_aggressor,
                )
            )

    def on_refresh_window(self, cycle: int) -> None:
        for table in self.tables:
            table.reset()

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """Graphene stores its tables in CAM inside the memory controller."""
        row_bits = max(1, math.ceil(math.log2(rows_per_bank)))
        count_bits = max(1, math.ceil(math.log2(max(2, self.trigger_threshold)))) + 1
        entry_bits = row_bits + count_bits
        entries = graphene_table_entries(self.nrh, self.reset_window_activations)
        return {"cam_bits": num_banks * entries * entry_bits}

    def reset(self) -> None:
        super().reset()
        for table in self.tables:
            table.reset()
