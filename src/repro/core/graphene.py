"""Graphene: Misra-Gries frequent-item tracking in the memory controller.

Graphene (Park et al., MICRO 2020) keeps, for every bank, a small table of
(row address, counter) pairs managed with the Misra-Gries frequent-element
algorithm plus a *spillover counter*.  The table is provisioned so that any
row activated more than the mitigation threshold within a reset window is
guaranteed to be tracked.  When a tracked row's estimated count crosses a
multiple of the threshold, the victims of that row are preventively
refreshed.

Graphene provides deterministic protection, but its table must grow inversely
with ``N_RH`` and it is implemented with content-addressable memory in the
memory controller, which is why its storage cost explodes at low thresholds
(50.3x growth from ``N_RH`` = 1K to 20 in Fig. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.mitigation import (
    DEFAULT_BLAST_RADIUS,
    ControllerMitigation,
    PreventiveRefresh,
)


@dataclass
class GrapheneEntry:
    """One Misra-Gries table entry."""

    row: int
    count: int
    #: Count value at which the last preventive refresh was triggered.
    last_trigger: int = 0


class MisraGriesTable:
    """A Misra-Gries summary with a spillover counter (one per bank)."""

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.entries: Dict[int, GrapheneEntry] = {}
        self.spillover = 0

    def observe(self, row: int) -> GrapheneEntry:
        """Record one activation of ``row`` and return its table entry.

        Implements the Graphene update rule: tracked rows increment their
        counter; untracked rows either claim an empty slot (starting from the
        spillover count) or increment the spillover counter and replace the
        minimum entry once the spillover catches up with it.
        """
        entry = self.entries.get(row)
        if entry is not None:
            entry.count += 1
            return entry
        if len(self.entries) < self.num_entries:
            entry = GrapheneEntry(row=row, count=self.spillover + 1,
                                  last_trigger=self.spillover)
            self.entries[row] = entry
            return entry
        self.spillover += 1
        min_row = min(self.entries, key=lambda r: self.entries[r].count)
        min_entry = self.entries[min_row]
        if self.spillover >= min_entry.count:
            # Swap: the new row inherits the spillover count; the evicted
            # row's count becomes the new spillover value.
            del self.entries[min_row]
            self.spillover, inherited = min_entry.count, self.spillover
            entry = GrapheneEntry(row=row, count=inherited + 1,
                                  last_trigger=inherited)
            self.entries[row] = entry
            return entry
        # The activation is absorbed by the spillover counter: the count
        # estimate of this row is the spillover value itself.
        return GrapheneEntry(row=row, count=self.spillover, last_trigger=self.spillover)

    def max_count(self) -> int:
        """Maximum tracked count (0 for an empty table)."""
        if not self.entries:
            return 0
        return max(entry.count for entry in self.entries.values())

    def reset(self) -> None:
        self.entries.clear()
        self.spillover = 0


def graphene_table_entries(nrh: int, reset_window_activations: int) -> int:
    """Number of Misra-Gries entries Graphene needs per bank.

    Graphene guarantees that any row activated ``threshold`` times within the
    reset window is tracked as long as the table has at least
    ``window / threshold`` entries (Misra-Gries error bound).
    """
    threshold = graphene_trigger_threshold(nrh)
    return max(1, math.ceil(reset_window_activations / threshold) + 1)


def graphene_trigger_threshold(nrh: int) -> int:
    """Activation-count granularity at which victims are refreshed."""
    return max(1, nrh // 2)


class Graphene(ControllerMitigation):
    """Graphene read-disturbance mitigation (per-bank Misra-Gries tables)."""

    name = "Graphene"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        reset_window_activations: Optional[int] = None,
        table_entries: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
    ) -> None:
        """Create a Graphene instance.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks (one table per bank).
            reset_window_activations: maximum activations a bank can receive
                within one table reset window; defaults to half a refresh
                window of back-to-back activations (tREFW / 2 / tRC), the
                provisioning the storage model also uses.
            table_entries: override the table size (otherwise derived from
                ``nrh`` and the reset window).
            blast_radius: victim rows on each side of an aggressor.
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        if reset_window_activations is None:
            reset_window_activations = int(32_000_000 / 2 / 47)
        self.reset_window_activations = reset_window_activations
        self.trigger_threshold = graphene_trigger_threshold(nrh)
        if table_entries is None:
            table_entries = graphene_table_entries(nrh, reset_window_activations)
        self.table_entries = table_entries
        self.tables: List[MisraGriesTable] = [
            MisraGriesTable(table_entries) for _ in range(num_banks)
        ]

    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        entry = self.tables[bank_id].observe(row)
        if entry.count - entry.last_trigger >= self.trigger_threshold:
            entry.last_trigger = entry.count
            self.queue_refresh(
                PreventiveRefresh(
                    bank_id=bank_id,
                    aggressor_row=row,
                    num_rows=self.victim_rows_per_aggressor,
                )
            )

    def on_refresh_window(self, cycle: int) -> None:
        for table in self.tables:
            table.reset()

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """Graphene stores its tables in CAM inside the memory controller."""
        row_bits = max(1, math.ceil(math.log2(rows_per_bank)))
        count_bits = max(1, math.ceil(math.log2(max(2, self.trigger_threshold)))) + 1
        entry_bits = row_bits + count_bits
        entries = graphene_table_entries(self.nrh, self.reset_window_activations)
        return {"cam_bits": num_banks * entries * entry_bits}

    def reset(self) -> None:
        super().reset()
        for table in self.tables:
            table.reset()
