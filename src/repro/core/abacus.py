"""ABACuS: All-Bank Activation Counters (Olgun et al., USENIX Security 2024).

ABACuS exploits the observation that -- because of cache-block interleaving
across banks and the spatial locality of workloads -- rows with the *same row
address* in different banks tend to be activated at around the same time.  It
therefore keeps a single shared counter per row address (a *sibling
activation counter*, SAC) together with a per-bank Row Activation Vector
(RAV), instead of one counter per (bank, row) pair.

The counters are organised as a Misra-Gries table in the memory controller,
like Graphene, but with ~``num_banks``x fewer entries; when a sibling counter
reaches the threshold, the victims of that row address are refreshed in every
bank whose RAV bit is set.

Appendix C of the Chronus paper compares Chronus against ABACuS using
ABACuS's own address mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.mitigation import (
    DEFAULT_BLAST_RADIUS,
    ControllerMitigation,
    PreventiveRefresh,
)


@dataclass
class SiblingEntry:
    """A shared activation counter for one row address across all banks."""

    row: int
    count: int
    #: Banks that have activated this row address since the last counter
    #: increment (the Row Activation Vector).
    rav: Set[int] = field(default_factory=set)
    last_trigger: int = 0


class ABACuS(ControllerMitigation):
    """ABACuS all-bank activation counters."""

    name = "ABACuS"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        reset_window_activations: Optional[int] = None,
        table_entries: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
    ) -> None:
        """Create an ABACuS instance.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks sharing the sibling counters.
            reset_window_activations: maximum activations per bank within the
                table reset window (defaults to half a refresh window of
                back-to-back activations).
            table_entries: number of sibling counters (defaults to the
                Misra-Gries bound ``window / threshold``).
            blast_radius: victim rows on each side of an aggressor.
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        if reset_window_activations is None:
            reset_window_activations = int(32_000_000 / 2 / 47)
        self.reset_window_activations = reset_window_activations
        self.trigger_threshold = max(1, nrh // 2)
        if table_entries is None:
            table_entries = max(
                1, math.ceil(reset_window_activations / self.trigger_threshold) + 1
            )
        self.table_entries = table_entries
        self._table: Dict[int, SiblingEntry] = {}
        self._spillover = 0

    # ------------------------------------------------------------------ #
    # Observation hooks
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        entry = self._observe(row)
        # The sibling counter only increments when a bank activates a row
        # address that was already activated since the last increment; this
        # makes the counter track the *maximum* per-bank count.
        if bank_id in entry.rav:
            entry.count += 1
            entry.rav = {bank_id}
        else:
            entry.rav.add(bank_id)
        if entry.count - entry.last_trigger >= self.trigger_threshold:
            entry.last_trigger = entry.count
            self._refresh_siblings(entry)

    def _observe(self, row: int) -> SiblingEntry:
        """Misra-Gries style lookup / insert of the sibling entry for ``row``."""
        entry = self._table.get(row)
        if entry is not None:
            return entry
        if len(self._table) < self.table_entries:
            entry = SiblingEntry(row=row, count=self._spillover,
                                 last_trigger=self._spillover)
            self._table[row] = entry
            return entry
        self._spillover += 1
        min_row = min(self._table, key=lambda r: self._table[r].count)
        min_entry = self._table[min_row]
        if self._spillover >= min_entry.count:
            del self._table[min_row]
            self._spillover, inherited = min_entry.count, self._spillover
            entry = SiblingEntry(row=row, count=inherited, last_trigger=inherited)
            self._table[row] = entry
            return entry
        return SiblingEntry(row=row, count=self._spillover,
                            last_trigger=self._spillover)

    def _refresh_siblings(self, entry: SiblingEntry) -> None:
        """Refresh the victims of the row address in every bank that used it."""
        banks = entry.rav if entry.rav else set(range(self.num_banks))
        for bank_id in sorted(banks):
            self.queue_refresh(
                PreventiveRefresh(
                    bank_id=bank_id,
                    aggressor_row=entry.row,
                    num_rows=self.victim_rows_per_aggressor,
                )
            )
        entry.rav = set()

    def on_refresh_window(self, cycle: int) -> None:
        self._table.clear()
        self._spillover = 0

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """ABACuS keeps its sibling counters in CAM+SRAM in the controller."""
        row_bits = max(1, math.ceil(math.log2(rows_per_bank)))
        count_bits = max(1, math.ceil(math.log2(max(2, self.trigger_threshold)))) + 1
        entry_bits = row_bits + count_bits + num_banks  # RAV bitvector
        entries = max(
            1, math.ceil(self.reset_window_activations / self.trigger_threshold) + 1
        )
        return {"cam_bits": entries * entry_bits}

    def reset(self) -> None:
        super().reset()
        self._table.clear()
        self._spillover = 0
