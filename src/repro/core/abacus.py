"""ABACuS: All-Bank Activation Counters (Olgun et al., USENIX Security 2024).

ABACuS exploits the observation that -- because of cache-block interleaving
across banks and the spatial locality of workloads -- rows with the *same row
address* in different banks tend to be activated at around the same time.  It
therefore keeps a single shared counter per row address (a *sibling
activation counter*, SAC) together with a per-bank Row Activation Vector
(RAV), instead of one counter per (bank, row) pair.

The counters are organised as a Misra-Gries table in the memory controller,
like Graphene, but with ~``num_banks``x fewer entries; when a sibling counter
reaches the threshold, the victims of that row address are refreshed in every
bank whose RAV bit is set.

Appendix C of the Chronus paper compares Chronus against ABACuS using
ABACuS's own address mapping.

Backends: the ``"dict"`` reference keeps a dict of :class:`SiblingEntry`
objects with RAVs as Python sets; the ``"array"`` backend (default) keeps
index-slot parallel lists with the RAV as a plain bitmask int (bit ``b`` =
bank ``b``), insertion-stamped slots for dict-identical eviction ties, and a
slot freelist.  Victim fan-out iterates RAV bits in ascending bank order,
matching the reference's sorted-set iteration bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.counters import resolve_backend
from repro.core.mitigation import (
    DEFAULT_BLAST_RADIUS,
    ControllerMitigation,
    PreventiveRefresh,
)


@dataclass
class SiblingEntry:
    """A shared activation counter for one row address across all banks."""

    row: int
    count: int
    #: Banks that have activated this row address since the last counter
    #: increment (the Row Activation Vector).
    rav: Set[int] = field(default_factory=set)
    last_trigger: int = 0


class ABACuS(ControllerMitigation):
    """ABACuS all-bank activation counters."""

    name = "ABACuS"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        reset_window_activations: Optional[int] = None,
        table_entries: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        backend: Optional[str] = None,
    ) -> None:
        """Create an ABACuS instance.

        Args:
            nrh: RowHammer threshold.
            num_banks: number of banks sharing the sibling counters.
            reset_window_activations: maximum activations per bank within the
                table reset window (defaults to half a refresh window of
                back-to-back activations).
            table_entries: number of sibling counters (defaults to the
                Misra-Gries bound ``window / threshold``).
            blast_radius: victim rows on each side of an aggressor.
            backend: counter-store backend ("dict" / "array"; None resolves
                to the module default, array).
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        if reset_window_activations is None:
            reset_window_activations = int(32_000_000 / 2 / 47)
        self.reset_window_activations = reset_window_activations
        self.trigger_threshold = max(1, nrh // 2)
        if table_entries is None:
            table_entries = max(
                1, math.ceil(reset_window_activations / self.trigger_threshold) + 1
            )
        self.table_entries = table_entries
        self.backend = resolve_backend(backend)
        self._spillover = 0
        if self.backend == "array":
            # Slot storage grows by appending (benign workloads rarely fill
            # the provisioned table); a slot, once allocated, is always live
            # -- Misra-Gries only replaces in place when full.
            self._rows: List[int] = []
            self._counts: List[int] = []
            self._last_trigger: List[int] = []
            self._rav: List[int] = []
            self._seq: List[int] = []
            self._slot_of: Dict[int, int] = {}
            self._next_seq = 0
            self.on_activate = self._on_activate_array  # type: ignore[method-assign]
        else:
            self._table: Dict[int, SiblingEntry] = {}

    # ------------------------------------------------------------------ #
    # Observation hooks -- dict backend (reference)
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        entry = self._observe(row)
        # The sibling counter only increments when a bank activates a row
        # address that was already activated since the last increment; this
        # makes the counter track the *maximum* per-bank count.
        if bank_id in entry.rav:
            entry.count += 1
            entry.rav = {bank_id}
        else:
            entry.rav.add(bank_id)
        if entry.count - entry.last_trigger >= self.trigger_threshold:
            entry.last_trigger = entry.count
            self._refresh_siblings(entry)

    def _observe(self, row: int) -> SiblingEntry:
        """Misra-Gries style lookup / insert of the sibling entry for ``row``."""
        entry = self._table.get(row)
        if entry is not None:
            return entry
        if len(self._table) < self.table_entries:
            entry = SiblingEntry(row=row, count=self._spillover,
                                 last_trigger=self._spillover)
            self._table[row] = entry
            return entry
        self._spillover += 1
        min_row = min(self._table, key=lambda r: self._table[r].count)
        min_entry = self._table[min_row]
        if self._spillover >= min_entry.count:
            del self._table[min_row]
            self._spillover, inherited = min_entry.count, self._spillover
            entry = SiblingEntry(row=row, count=inherited, last_trigger=inherited)
            self._table[row] = entry
            return entry
        return SiblingEntry(row=row, count=self._spillover,
                            last_trigger=self._spillover)

    def _refresh_siblings(self, entry: SiblingEntry) -> None:
        """Refresh the victims of the row address in every bank that used it."""
        banks = entry.rav if entry.rav else set(range(self.num_banks))
        for bank_id in sorted(banks):
            self.queue_refresh(
                PreventiveRefresh(
                    bank_id=bank_id,
                    aggressor_row=entry.row,
                    num_rows=self.victim_rows_per_aggressor,
                )
            )
        entry.rav = set()

    # ------------------------------------------------------------------ #
    # Observation hooks -- array backend (bitmask RAVs, index slots)
    # ------------------------------------------------------------------ #
    def _on_activate_array(self, bank_id: int, row: int, cycle: int) -> None:
        self.stats.tracked_activations += 1
        slot = self._slot_of.get(row)
        counts = self._counts
        if slot is None:
            if len(counts) < self.table_entries:
                slot = len(counts)
                self._append(row, self._spillover, self._spillover)
            else:
                self._spillover += 1
                spill = self._spillover
                lowest = min(counts)
                if spill < lowest:
                    # Absorbed by the spillover counter: the ephemeral
                    # entry's trigger delta is zero, so nothing can fire and
                    # its RAV update is discarded (reference behaviour).
                    return
                slot = self._evict_slot(lowest)
                del self._slot_of[self._rows[slot]]
                self._spillover, inherited = lowest, spill
                self._install(slot, row, inherited, inherited)
        rav = self._rav
        bit = 1 << bank_id
        if rav[slot] & bit:
            count = counts[slot] + 1
            counts[slot] = count
            rav[slot] = bit
        else:
            rav[slot] |= bit
            count = counts[slot]
        if count - self._last_trigger[slot] >= self.trigger_threshold:
            self._last_trigger[slot] = count
            self._refresh_siblings_array(slot)

    def _append(self, row: int, count: int, last_trigger: int) -> None:
        self._slot_of[row] = len(self._rows)
        self._rows.append(row)
        self._counts.append(count)
        self._last_trigger.append(last_trigger)
        self._rav.append(0)
        self._seq.append(self._next_seq)
        self._next_seq += 1

    def _install(self, slot: int, row: int, count: int, last_trigger: int) -> None:
        self._slot_of[row] = slot
        self._rows[slot] = row
        self._counts[slot] = count
        self._last_trigger[slot] = last_trigger
        self._rav[slot] = 0
        self._seq[slot] = self._next_seq
        self._next_seq += 1

    def _evict_slot(self, lowest: int) -> int:
        """Slot holding ``lowest`` with the smallest insertion stamp."""
        counts = self._counts
        slot = counts.index(lowest)
        if counts.count(lowest) > 1:
            seq = self._seq
            for other in range(slot + 1, len(counts)):
                if counts[other] == lowest and seq[other] < seq[slot]:
                    slot = other
        return slot

    def _refresh_siblings_array(self, slot: int) -> None:
        mask = self._rav[slot]
        row = self._rows[slot]
        num_rows = self.victim_rows_per_aggressor
        queue_refresh = self.queue_refresh
        if mask:
            bank_id = 0
            while mask:
                if mask & 1:
                    queue_refresh(
                        PreventiveRefresh(
                            bank_id=bank_id, aggressor_row=row, num_rows=num_rows
                        )
                    )
                mask >>= 1
                bank_id += 1
        else:
            for bank_id in range(self.num_banks):
                queue_refresh(
                    PreventiveRefresh(
                        bank_id=bank_id, aggressor_row=row, num_rows=num_rows
                    )
                )
        self._rav[slot] = 0

    def on_refresh_window(self, cycle: int) -> None:
        self._reset_table()

    def _reset_table(self) -> None:
        self._spillover = 0
        if self.backend == "array":
            self._rows.clear()
            self._counts.clear()
            self._last_trigger.clear()
            self._rav.clear()
            self._seq.clear()
            self._slot_of.clear()
            self._next_seq = 0
        else:
            self._table.clear()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def spillover(self) -> int:
        """Current spillover-counter value (backend-agnostic view)."""
        return self._spillover

    def sibling_entries(self) -> Dict[int, SiblingEntry]:
        """Snapshot of the tracked sibling counters, keyed by row address.

        RAVs are materialised as sets in both backends, so inspection code
        and tests are backend-agnostic.
        """
        if self.backend == "array":
            return {
                row: SiblingEntry(
                    row=row,
                    count=self._counts[slot],
                    rav={b for b in range(self.num_banks)
                         if self._rav[slot] >> b & 1},
                    last_trigger=self._last_trigger[slot],
                )
                for row, slot in self._slot_of.items()
            }
        return self._table

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """ABACuS keeps its sibling counters in CAM+SRAM in the controller."""
        row_bits = max(1, math.ceil(math.log2(rows_per_bank)))
        count_bits = max(1, math.ceil(math.log2(max(2, self.trigger_threshold)))) + 1
        entry_bits = row_bits + count_bits + num_banks  # RAV bitvector
        entries = max(
            1, math.ceil(self.reset_window_activations / self.trigger_threshold) + 1
        )
        return {"cam_bits": entries * entry_bits}

    def reset(self) -> None:
        super().reset()
        self._reset_table()
