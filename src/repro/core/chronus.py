"""Chronus: the paper's proposal (§7).

Chronus addresses PRAC's two major weaknesses with two components:

1. **Concurrent Counter Update (CCU).**  Row activation counters are moved to
   a small *counter subarray* per bank and updated by a decrementer circuit
   concurrently with the data-row access (exploiting subarray-level
   parallelism).  Consequently Chronus keeps the *baseline* (non-PRAC) DRAM
   timing parameters -- the single largest source of PRAC's overhead at
   modern ``N_RH`` values.

2. **Chronus Back-Off.**  Instead of a fixed number of RFMs followed by a
   delay period, Chronus keeps the back-off signal asserted until *every* row
   whose activation count reached the back-off threshold has had its victims
   refreshed, and it never enforces a delay period.  This removes the wave
   attack (the attacker can no longer out-run the mitigation), which lets
   Chronus use a much less aggressive back-off threshold
   (``NBO < N_RH - Anormal``, §8).

``Chronus-PB`` (Chronus with PRAC Back-Off) is the paper's ablation: CCU only,
with PRAC-4's fixed-RFM back-off policy.  It is implemented as a thin PRAC
subclass that does not require the PRAC timings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    SecurityParameters,
    att_required_entries,
    chronus_secure_backoff_threshold,
)
from repro.core.counters import (
    AggressorTrackingTable,
    CounterSubarray,
    PerRowCounters,
    resolve_backend,
)
from repro.core.mitigation import DEFAULT_BLAST_RADIUS, OnDieMitigation
from repro.core.prac import PRAC, counter_width_bits


#: Energy overhead of the counter-subarray activation + counter update on a
#: DRAM row access, from the paper's SPICE evaluation (§7.1): +19.07 %.
CCU_ROW_ACCESS_ENERGY_OVERHEAD = 0.1907


class Chronus(OnDieMitigation):
    """Chronus: CCU + Chronus Back-Off."""

    #: CCU keeps the baseline timings.
    requires_prac_timings = False

    #: Extra energy per row access for the counter-subarray update.
    act_energy_multiplier = 1.0 + CCU_ROW_ACCESS_ENERGY_OVERHEAD

    name = "Chronus"

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        nbo: Optional[int] = None,
        att_entries: Optional[int] = None,
        blast_radius: int = DEFAULT_BLAST_RADIUS,
        borrowed_refresh: bool = True,
        counter_subarray: Optional[CounterSubarray] = None,
        security_params: SecurityParameters = DEFAULT_PARAMETERS,
        backend: Optional[str] = None,
    ) -> None:
        """Create a Chronus instance.

        Args:
            nrh: RowHammer threshold the device must defend against.
            num_banks: number of banks in the channel.
            nbo: back-off threshold.  Defaults to the largest secure value,
                ``min(N_RH - Anormal - 1, 256)`` (§8; the cap comes from the
                8-bit counters in the counter subarray).
            att_entries: Aggressor Tracking Table size (defaults to the
                secure minimum ``Anormal + 1``).
            blast_radius: victim rows on each side of an aggressor.
            borrowed_refresh: refresh the victims of one tracked aggressor
                per bank every other periodic REF.
            counter_subarray: counter-subarray geometry (for storage
                accounting); defaults to the paper's reference configuration.
            security_params: physical parameters used for the default
                configuration.
            backend: counter-store backend ("dict" / "array"; None resolves
                to the module default, array).
        """
        super().__init__(nrh, blast_radius)
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        self.security_params = security_params
        self.is_secure = True
        if nbo is None:
            nbo = chronus_secure_backoff_threshold(nrh, security_params)
        self.nbo = nbo
        if att_entries is None:
            att_entries = att_required_entries(security_params, prac_timings=False)
        self.att_entries = att_entries
        self.counter_subarray = counter_subarray or CounterSubarray()
        self.borrowed_refresh = borrowed_refresh

        self.backend = resolve_backend(backend)
        self.counters = PerRowCounters(num_banks, backend=self.backend)
        self.att: List[AggressorTrackingTable] = [
            AggressorTrackingTable(att_entries, backend=self.backend)
            for _ in range(num_banks)
        ]
        #: Rows whose activation count reached the back-off threshold and
        #: whose victims have not been refreshed yet, per bank.
        self._hot_rows: List[Set[int]] = [set() for _ in range(num_banks)]
        #: Total rows across all banks awaiting a preventive refresh; kept
        #: incrementally so the per-tick back-off probe is O(1) instead of
        #: scanning every bank's set.
        self._hot_total = 0
        self._backoff_was_asserted = False
        self._borrow_toggle = False

    # ------------------------------------------------------------------ #
    # Observation hooks
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        """CCU updates the counter concurrently with the activation."""
        self.stats.tracked_activations += 1
        count = self.counters.increment(bank_id, row)
        self.att[bank_id].update(row, count)
        if count >= self.nbo:
            if not self._hot_total:
                self.stats.backoffs += 1
            hot = self._hot_rows[bank_id]
            if row not in hot:
                hot.add(row)
                self._hot_total += 1

    def on_precharge(self, bank_id: int, row: int, cycle: int) -> None:
        """No work on precharge: the counter was already updated (CCU)."""

    def on_periodic_refresh(self, bank_ids: List[int], cycle: int) -> None:
        if not self.borrowed_refresh:
            return
        self._borrow_toggle = not self._borrow_toggle
        if not self._borrow_toggle:
            return
        for bank_id in bank_ids:
            entry = self.att[bank_id].max_entry()
            if entry is None or entry.count == 0:
                continue
            self._forget_row(bank_id, entry.row, cycle)
            self.stats.borrowed_refreshes += self.victim_rows_per_aggressor

    def on_refresh_window(self, cycle: int) -> None:
        self.counters.reset_all()
        for att in self.att:
            att.clear()
        for hot in self._hot_rows:
            hot.clear()
        self._hot_total = 0

    # ------------------------------------------------------------------ #
    # Back-off protocol (Chronus Back-Off: dynamic, no delay period)
    # ------------------------------------------------------------------ #
    def backoff_asserted(self) -> bool:
        return self._hot_total > 0

    def wants_more_rfm(self) -> bool:
        return self.backoff_asserted()

    def on_rfm(self, bank_ids: List[int], cycle: int) -> int:
        """Refresh the victims of the hottest pending row in each bank.

        The back-off de-asserts automatically once no row at or above the
        threshold remains (property P3 of §8).
        """
        refreshed_rows = 0
        for bank_id in bank_ids:
            hot = self._hot_rows[bank_id]
            target: Optional[int] = None
            if hot:
                target = max(hot, key=lambda r: self.counters.get(bank_id, r))
            else:
                entry = self.att[bank_id].max_entry()
                if entry is not None and entry.count > 0:
                    target = entry.row
            if target is None:
                continue
            self._forget_row(bank_id, target, cycle)
            refreshed_rows += self.victim_rows_per_aggressor
        self.stats.rfm_commands += 1
        self.stats.preventive_refresh_rows += refreshed_rows
        return refreshed_rows

    def _forget_row(self, bank_id: int, row: int, cycle: int = 0) -> None:
        """Reset all tracking state of a row after its victims are refreshed."""
        self.counters.reset_row(bank_id, row)
        self.att[bank_id].invalidate(row)
        hot = self._hot_rows[bank_id]
        if row in hot:
            hot.remove(row)
            self._hot_total -= 1
        self.notify_victims_refreshed(
            bank_id, row, self.victim_rows_per_aggressor, cycle
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def pending_hot_rows(self) -> int:
        """Rows currently awaiting a preventive refresh (all banks)."""
        return self._hot_total

    def storage_overhead_bits(self, num_banks: int, rows_per_bank: int) -> Dict[str, int]:
        """Chronus keeps one counter per row in the DRAM counter subarray."""
        counter_bits = counter_width_bits(self.nrh)
        return {"dram_bits": num_banks * rows_per_bank * counter_bits}

    def reset(self) -> None:
        super().reset()
        self.counters.reset_all()
        for att in self.att:
            att.clear()
        for hot in self._hot_rows:
            hot.clear()
        self._hot_total = 0
        self._borrow_toggle = False


class ChronusPB(PRAC):
    """Chronus-PB: Concurrent Counter Update with PRAC-4's back-off policy.

    Used by the paper to isolate the benefit of CCU from the benefit of
    Chronus Back-Off: it keeps the baseline timings (CCU) but performs a
    fixed number of preventive refreshes per back-off and enforces the delay
    period, so it remains vulnerable to the wave attack and must use PRAC's
    conservative back-off threshold.
    """

    requires_prac_timings = False
    act_energy_multiplier = 1.0 + CCU_ROW_ACCESS_ENERGY_OVERHEAD

    def __init__(
        self,
        nrh: int,
        num_banks: int,
        nref: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(nrh, num_banks, nref=nref, **kwargs)
        self.name = "Chronus-PB"
