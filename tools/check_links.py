#!/usr/bin/env python3
"""Check that relative links in the repository's Markdown files resolve.

Scans every ``*.md`` file under the repository root (skipping dot-directories
and caches) for inline Markdown links ``[text](target)`` and verifies that
each *relative* target exists on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped; a relative
target may carry an anchor suffix, which is stripped before the existence
check.

Exit status: 0 when every link resolves, 1 otherwise (one diagnostic line per
broken link) -- suitable as a CI step and callable from the test suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Inline Markdown link: [text](target).  Images ![alt](target) match too via
#: the optional leading "!".
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Directories never scanned (caches, VCS internals, virtualenvs).
SKIPPED_DIRS = {".git", ".repro-cache", ".ci-cache", "__pycache__", ".venv", "node_modules"}

#: Generated retrieval artifacts (paper extraction leaves dangling figure
#: references in them); only hand-written documentation is checked.
SKIPPED_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}

#: Link schemes that are not local files.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> Iterator[Path]:
    """Every ``*.md`` file under ``root``, skipping ignored directories."""
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIPPED_DIRS for part in path.parts):
            continue
        if path.name in SKIPPED_FILES:
            continue
        yield path


def extract_links(text: str) -> List[str]:
    """All inline link targets of a Markdown document."""
    return LINK_PATTERN.findall(text)


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """All (file, target) pairs whose relative target does not resolve."""
    broken: List[Tuple[Path, str]] = []
    for markdown in markdown_files(root):
        for target in extract_links(markdown.read_text(encoding="utf-8")):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            local = target.split("#", 1)[0]
            if not local:
                continue
            resolved = (markdown.parent / local).resolve()
            if not resolved.exists():
                broken.append((markdown, target))
    return broken


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    problems = broken_links(root)
    checked = len(list(markdown_files(root)))
    for markdown, target in problems:
        print(f"{markdown.relative_to(root)}: broken relative link -> {target}")
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} Markdown files")
        return 1
    print(f"all relative links resolve across {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
