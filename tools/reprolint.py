#!/usr/bin/env python3
"""CI entry point for reprolint, the project-aware static checker.

Thin wrapper over :mod:`repro.lint.cli` that works without an installed
package (it prepends ``src/`` to ``sys.path``), so CI can run it before --
or instead of -- ``pip install -e .``:

    python tools/reprolint.py --format json

See docs/LINTING.md for the rule catalogue and the baseline workflow.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402  (sys.path bootstrap above)

if __name__ == "__main__":
    sys.exit(main())
