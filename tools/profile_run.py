#!/usr/bin/env python3
"""cProfile entry point for the simulator hot path.

Perf PRs should start from data, not intuition.  This tool runs one
representative simulation under :mod:`cProfile` and prints the top cumulative
hot spots, so "where does the time go?" has a one-command answer::

    PYTHONPATH=src python -m tools.profile_run --mechanism prac --channels 2
    PYTHONPATH=src python -m tools.profile_run --mechanism graphene --sort tottime
    PYTHONPATH=src python -m tools.profile_run --mechanism none --out prof.pstats
    PYTHONPATH=src python -m tools.profile_run --json --top 10 > hotspots.json

Mechanism names are matched case-insensitively against the factory registry
(``prac`` resolves to ``PRAC-4``); the workload is the bench_hotpath
reference mix, so profiles line up with the committed wall-clock numbers.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core.factory import MECHANISM_NAMES  # noqa: E402
from repro.experiments.sweep import build_job_traces, mechanism_job  # noqa: E402
from repro.system.config import paper_system_config  # noqa: E402
from repro.system.simulator import simulate  # noqa: E402

#: The bench_hotpath reference mix (keep in sync with benchmarks/bench_hotpath.py).
APPS = ("429.mcf", "401.bzip2")

#: Shorthand aliases accepted on top of the exact registry names.
ALIASES = {
    "prac": "PRAC-4",
    "chronus-pb": "Chronus-PB",
    "pb": "Chronus-PB",
}


def resolve_mechanism(name: str) -> str:
    """Match ``name`` case-insensitively against the mechanism registry."""
    lowered = name.lower()
    if lowered in ALIASES:
        return ALIASES[lowered]
    for registered in MECHANISM_NAMES:
        if registered.lower() == lowered:
            return registered
    raise ValueError(
        f"unknown mechanism {name!r}; expected one of {', '.join(MECHANISM_NAMES)}"
    )


def top_functions(
    stats: pstats.Stats, sort: str, top: int
) -> List[Dict[str, object]]:
    """The top-``top`` profile rows as plain records (the ``--json`` view)."""
    rows = []
    for (filename, line, name), record in stats.stats.items():  # type: ignore[attr-defined]
        cc, nc, tt, ct = record[0], record[1], record[2], record[3]
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{line}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    key = {"cumulative": "cumtime", "tottime": "tottime", "calls": "ncalls"}[sort]
    rows.sort(key=lambda row: row[key], reverse=True)
    return rows[:top]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.profile_run",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--mechanism", default="prac", metavar="NAME",
        help="mechanism to profile (case-insensitive; 'prac' = PRAC-4)",
    )
    parser.add_argument(
        "--channels", type=int, default=1, metavar="N",
        help="memory channels of the simulated system (default: 1)",
    )
    parser.add_argument(
        "--nrh", type=int, default=64, metavar="N",
        help="RowHammer threshold (default: 64, the bench_hotpath value)",
    )
    parser.add_argument(
        "--accesses", type=int, default=1500, metavar="N",
        help="memory accesses per core (default: 1500, the bench_hotpath value)",
    )
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows of the pstats report to print (default: 20)",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "calls"],
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--strict-tick", action="store_true",
        help="profile the cycle-stepped reference path instead",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also dump the raw pstats data for snakeviz/pstats browsing",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable top-N summary (honours --sort/--top) "
             "instead of the pstats text report",
    )
    args = parser.parse_args(argv)

    try:
        mechanism = resolve_mechanism(args.mechanism)
        base = paper_system_config().with_overrides(channels=args.channels)
        job = mechanism_job(base, APPS, mechanism, args.nrh, args.accesses)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    traces = build_job_traces(job)

    if not args.json:
        print(
            f"profiling {mechanism} @ N_RH={args.nrh}, {args.channels} "
            f"channel(s), {args.accesses} accesses/core ({'+'.join(APPS)})"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(
        job.config, traces,
        workload_name=job.workload_name, strict_tick=args.strict_tick,
    )
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort)
    if args.json:
        summary = {
            "mechanism": mechanism,
            "channels": args.channels,
            "nrh": args.nrh,
            "accesses": args.accesses,
            "strict_tick": args.strict_tick,
            "sort": args.sort,
            "cycles": result.cycles,
            "reads_served": result.controller_stats["reads_served"],
            "top": top_functions(stats, args.sort, args.top),
        }
        json.dump(summary, sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        stats.print_stats(args.top)
        print(
            f"simulated {result.cycles} DRAM cycles, "
            f"{result.controller_stats['reads_served']} reads served"
        )
    if args.out:
        stats.dump_stats(args.out)
        if not args.json:
            print(f"raw pstats dumped to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
